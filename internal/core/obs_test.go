package core

import (
	"testing"

	"mixen/internal/algo"
	"mixen/internal/gen"
	"mixen/internal/graph"
	"mixen/internal/obs"
)

func skewedTestGraph(t *testing.T) *graph.Graph {
	t.Helper()
	g, err := gen.Skewed(gen.SkewedConfig{
		N: 1500, M: 10000,
		RegularFrac: 0.4, SeedFrac: 0.3, SinkFrac: 0.2,
		ZipfS: 1.25, ZipfV: 1, Seed: 71,
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestTracePopulatedAndConsistent(t *testing.T) {
	g := skewedTestGraph(t)
	e, err := New(g, Config{Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	res, stats, err := e.RunWithStats(algo.NewInDegree(5))
	if err != nil {
		t.Fatal(err)
	}
	if len(stats.Trace) != res.Iterations {
		t.Fatalf("trace has %d entries, want %d", len(stats.Trace), res.Iterations)
	}
	var total int64
	for i, it := range stats.Trace {
		if it.Iter != i+1 {
			t.Errorf("trace[%d].Iter = %d, want %d", i, it.Iter, i+1)
		}
		if it.ScatterNs < 0 || it.CacheNs < 0 || it.GatherNs < 0 {
			t.Errorf("trace[%d] has negative step time: %+v", i, it)
		}
		if it.ActiveBlockRows < 0 || it.ActiveBlockRows > it.TotalBlockRows {
			t.Errorf("trace[%d] active rows %d/%d out of range", i, it.ActiveBlockRows, it.TotalBlockRows)
		}
		total += it.TotalNs()
	}
	// The traced steps cover the iteration bodies, so their sum must fit
	// inside the main phase (which also carries loop overhead).
	if total <= 0 || total > stats.MainTime.Nanoseconds() {
		t.Errorf("trace total %dns vs main phase %v", total, stats.MainTime)
	}
	if stats.Total() != stats.PreTime+stats.MainTime+stats.PostTime {
		t.Error("RunStats.Total must be the sum of the three phases")
	}
}

func TestTraceOffByDefault(t *testing.T) {
	g := skewedTestGraph(t)
	e, err := New(g, Config{})
	if err != nil {
		t.Fatal(err)
	}
	_, stats, err := e.RunWithStats(algo.NewInDegree(3))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Trace != nil {
		t.Errorf("trace populated without Config.Trace: %d entries", len(stats.Trace))
	}
}

func TestCollectorRecordsEngineRun(t *testing.T) {
	g := skewedTestGraph(t)
	reg := obs.NewRegistry()
	e, err := New(g, Config{Collector: reg})
	if err != nil {
		t.Fatal(err)
	}
	res, stats, err := e.RunWithStats(algo.NewInDegree(4))
	if err != nil {
		t.Fatal(err)
	}
	s := reg.Snapshot()
	if got := s.Counters["core.runs"]; got != 1 {
		t.Errorf("core.runs = %d, want 1", got)
	}
	if got := s.Counters["core.iterations"]; got != int64(res.Iterations) {
		t.Errorf("core.iterations = %d, want %d", got, res.Iterations)
	}
	if got := s.Histograms["core.iteration_ns"].Count; got != int64(res.Iterations) {
		t.Errorf("core.iteration_ns count = %d, want %d", got, res.Iterations)
	}
	// Preprocessing metrics recorded by New.
	if s.Histograms["core.filter_ns"].Count != 1 || s.Histograms["core.partition_ns"].Count != 1 {
		t.Error("preprocessing histograms not recorded")
	}
	if s.Counters["filter.runs"] != 1 || s.Counters["block.partitions"] != 1 {
		t.Errorf("filter/block counters missing: %v", s.Counters)
	}
	// Phase histograms recorded by RunWithStats; main must be within the
	// measured stats (same measurement, one sample).
	if got := s.Histograms["core.main_ns"].Sum; got != stats.MainTime.Nanoseconds() {
		t.Errorf("core.main_ns sum = %d, want %d", got, stats.MainTime.Nanoseconds())
	}
}

func TestSkippedBlocksPerRunReset(t *testing.T) {
	// Chain BFS skips blocks under activity tracking; two runs must each
	// report their own count, not a cumulative one.
	n := 4096
	var edges []graph.Edge
	for i := 0; i < n-1; i++ {
		edges = append(edges,
			graph.Edge{Src: graph.Node(i), Dst: graph.Node(i + 1)},
			graph.Edge{Src: graph.Node(i + 1), Dst: graph.Node(i)})
	}
	g, err := graph.FromEdges(n, edges)
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(g, Config{Side: 256})
	if err != nil {
		t.Fatal(err)
	}
	_, first, err := e.RunWithStats(algo.NewBFS(g, 0))
	if err != nil {
		t.Fatal(err)
	}
	if first.SkippedBlocks == 0 {
		t.Fatal("chain BFS skipped no blocks")
	}
	_, second, err := e.RunWithStats(algo.NewBFS(g, 0))
	if err != nil {
		t.Fatal(err)
	}
	if second.SkippedBlocks != first.SkippedBlocks {
		t.Errorf("second run skipped %d blocks, first %d — counter not reset per run",
			second.SkippedBlocks, first.SkippedBlocks)
	}
	if e.SkippedBlocks.Load() != second.SkippedBlocks {
		t.Errorf("engine field %d, stats %d", e.SkippedBlocks.Load(), second.SkippedBlocks)
	}
}

func TestBuildReportRoundTrip(t *testing.T) {
	g := skewedTestGraph(t)
	reg := obs.NewRegistry()
	e, err := New(g, Config{Collector: reg, Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	res, stats, err := e.RunWithStats(algo.NewInDegree(4))
	if err != nil {
		t.Fatal(err)
	}
	r := e.BuildReport("indegree", "skewed", res, stats)
	if r.Engine != "mixen" || r.Algorithm != "indegree" || r.Graph.Name != "skewed" {
		t.Errorf("report identity wrong: %+v", r)
	}
	if r.Graph.Nodes != g.NumNodes() || r.Graph.Edges != g.NumEdges() {
		t.Errorf("graph info = %+v", r.Graph)
	}
	if r.Iterations != res.Iterations || len(r.Trace) != res.Iterations {
		t.Errorf("iterations = %d, trace = %d, want %d", r.Iterations, len(r.Trace), res.Iterations)
	}
	for _, name := range []string{"filter", "partition", "pre", "main", "post"} {
		if r.Phase(name) <= 0 {
			t.Errorf("phase %q missing or non-positive", name)
		}
	}
	if r.Phase("main") != stats.MainTime {
		t.Errorf("main phase %v, stats %v", r.Phase("main"), stats.MainTime)
	}
	if r.Config["side"] == "" || r.Config["threads"] == "" {
		t.Errorf("effective config incomplete: %v", r.Config)
	}
	if r.Metrics == nil || r.Metrics.Counters["core.runs"] != 1 {
		t.Errorf("metrics snapshot missing: %+v", r.Metrics)
	}

	data, err := r.JSON()
	if err != nil {
		t.Fatal(err)
	}
	back, err := obs.ParseRunReport(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Engine != r.Engine || back.Iterations != r.Iterations ||
		len(back.Trace) != len(r.Trace) || back.Phase("main") != r.Phase("main") {
		t.Error("report JSON round trip lost data")
	}
}

func TestEffectiveConfigReflectsToggles(t *testing.T) {
	g := tiny(t)
	e, err := New(g, Config{Side: 2, Threads: 3, DisableCache: true, DisableActiveTracking: true})
	if err != nil {
		t.Fatal(err)
	}
	cfg := e.EffectiveConfig()
	if cfg["side"] != "2" || cfg["threads"] != "3" {
		t.Errorf("config = %v", cfg)
	}
	if cfg["cache"] != "off" || cfg["active_tracking"] != "off" {
		t.Errorf("ablation toggles not reported: %v", cfg)
	}
	// Defaults must not clutter the config with off-flags.
	plain, err := New(g, Config{Side: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := plain.EffectiveConfig()["cache"]; ok {
		t.Errorf("default config reports cache toggle: %v", plain.EffectiveConfig())
	}
}

func TestInstrumentableAfterConstruction(t *testing.T) {
	g := tiny(t)
	e, err := New(g, Config{Side: 2})
	if err != nil {
		t.Fatal(err)
	}
	var i obs.Instrumentable = e // compile-time check
	reg := obs.NewRegistry()
	i.SetCollector(reg)
	if _, err := e.Run(algo.NewInDegree(2)); err != nil {
		t.Fatal(err)
	}
	s := reg.Snapshot()
	if s.Counters["core.runs"] != 1 || s.Counters["core.iterations"] != 2 {
		t.Errorf("late-attached collector missed the run: %v", s.Counters)
	}
	// Detach: subsequent runs must not touch the registry.
	e.SetCollector(nil)
	if _, err := e.Run(algo.NewInDegree(1)); err != nil {
		t.Fatal(err)
	}
	if got := reg.Snapshot().Counters["core.runs"]; got != 1 {
		t.Errorf("detached collector still recorded: runs = %d", got)
	}
}

package core

import (
	"math"
	"testing"

	"mixen/internal/algo"
	"mixen/internal/gen"
	"mixen/internal/graph"
)

// tiny graph: 0->1, 0->2, 1->2, 2->0, 3->2, 5->4
// in-degrees: 0:1 1:1 2:3 3:0 4:1 5:0
func tiny(t *testing.T) *graph.Graph {
	t.Helper()
	g, err := graph.FromEdges(6, []graph.Edge{{Src: 0, Dst: 1}, {Src: 0, Dst: 2}, {Src: 1, Dst: 2}, {Src: 2, Dst: 0}, {Src: 3, Dst: 2}, {Src: 5, Dst: 4}})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestInDegreeOneIteration(t *testing.T) {
	g := tiny(t)
	e, err := New(g, Config{Side: 2})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(algo.NewInDegree(1))
	if err != nil {
		t.Fatal(err)
	}
	// After one SpMV with x0=1: receivers hold their in-degree; zero
	// in-degree nodes (3, 5) keep 1.
	want := []float64{1, 1, 3, 1, 1, 1}
	for v, w := range want {
		if got := res.Values[v]; got != w {
			t.Errorf("node %d = %v, want %v", v, got, w)
		}
	}
	if res.Iterations != 1 {
		t.Errorf("iterations = %d, want 1", res.Iterations)
	}
}

func TestInDegreeTwoIterations(t *testing.T) {
	g := tiny(t)
	e, err := New(g, Config{Side: 2})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(algo.NewInDegree(2))
	if err != nil {
		t.Fatal(err)
	}
	// x1 = [1,1,3,1,1,1]; x2[v] = Σ_{u→v} x1[u]:
	// x2[0] = x1[2] = 3; x2[1] = x1[0] = 1; x2[2] = x1[0]+x1[1]+x1[3] = 3;
	// x2[4] = x1[5] = 1; seeds 3,5 keep 1.
	want := []float64{3, 1, 3, 1, 1, 1}
	for v, w := range want {
		if got := res.Values[v]; got != w {
			t.Errorf("node %d = %v, want %v", v, got, w)
		}
	}
}

func TestSinkUsesFinalValues(t *testing.T) {
	// Chain 0 -> 1 -> 2 where 2 is a sink. After T iterations the Mixen
	// post-phase must compute the sink from the FINAL value of node 1.
	g, err := graph.FromEdges(3, []graph.Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 1, Dst: 0}, {Src: 0, Dst: 0}})
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(g, Config{Side: 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(algo.NewInDegree(3))
	if err != nil {
		t.Fatal(err)
	}
	// Regular subgraph {0,1}: x0=[1,1]; x1=[2,1]; x2=[3,2]; x3=[5,3].
	// Sink 2 = final x[1] = 3.
	if res.Values[0] != 5 || res.Values[1] != 3 {
		t.Fatalf("regular values = %v, want [5 3 _]", res.Values)
	}
	if res.Values[2] != 3 {
		t.Fatalf("sink value = %v, want 3 (from final x[1])", res.Values[2])
	}
}

func TestPageRankConvergesAndRanksHub(t *testing.T) {
	g, err := gen.Skewed(gen.SkewedConfig{
		N: 2000, M: 16000,
		RegularFrac: 0.4, SeedFrac: 0.3, SinkFrac: 0.2,
		ZipfS: 1.3, ZipfV: 1, Seed: 17,
	})
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(g, Config{})
	if err != nil {
		t.Fatal(err)
	}
	pr := algo.NewPageRank(g, 0.85, 1e-10, 500)
	res, err := e.Run(pr)
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations >= 500 {
		t.Fatalf("pagerank did not converge in %d iterations", res.Iterations)
	}
	// The max in-degree node should outrank the min in-degree receiver.
	var hub, low graph.Node
	var hubDeg, lowDeg int64 = -1, 1 << 62
	for v := 0; v < g.NumNodes(); v++ {
		d := g.InDegree(graph.Node(v))
		if d > hubDeg {
			hubDeg, hub = d, graph.Node(v)
		}
		if d > 0 && d < lowDeg {
			lowDeg, low = d, graph.Node(v)
		}
	}
	if res.Values[hub] <= res.Values[low] {
		t.Fatalf("hub rank %v <= low-degree rank %v", res.Values[hub], res.Values[low])
	}
	for v, val := range res.Values {
		if math.IsNaN(val) || val < 0 {
			t.Fatalf("node %d has invalid rank %v", v, val)
		}
	}
}

func TestBFSLevelsTiny(t *testing.T) {
	g := tiny(t)
	e, err := New(g, Config{Side: 2})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(algo.NewBFS(g, 0))
	if err != nil {
		t.Fatal(err)
	}
	inf := math.Inf(1)
	want := []float64{0, 1, 1, inf, inf, inf}
	for v, w := range want {
		if res.Values[v] != w {
			t.Errorf("level[%d] = %v, want %v", v, res.Values[v], w)
		}
	}
}

func TestBFSFromSeedReachesSink(t *testing.T) {
	g := tiny(t)
	e, err := New(g, Config{Side: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Source 5 is a seed; 4 is a sink reachable in one hop.
	res, err := e.Run(algo.NewBFS(g, 5))
	if err != nil {
		t.Fatal(err)
	}
	if res.Values[5] != 0 || res.Values[4] != 1 {
		t.Fatalf("levels = %v, want level(5)=0 level(4)=1", res.Values)
	}
	inf := math.Inf(1)
	for _, v := range []int{0, 1, 2, 3} {
		if res.Values[v] != inf {
			t.Errorf("level[%d] = %v, want +Inf", v, res.Values[v])
		}
	}
}

func TestCFWidthLanes(t *testing.T) {
	g := tiny(t)
	e, err := New(g, Config{Side: 2})
	if err != nil {
		t.Fatal(err)
	}
	cf := algo.NewCF(g, 4, 3)
	res, err := e.Run(cf)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Values) != 6*4 {
		t.Fatalf("values len = %d, want 24", len(res.Values))
	}
	for i, v := range res.Values {
		if math.IsNaN(v) {
			t.Fatalf("lane %d is NaN", i)
		}
	}
	// Seeds (3, 5) must keep their initial latent vectors.
	var init [4]float64
	cf.Init(3, init[:])
	for l := 0; l < 4; l++ {
		if res.Values[3*4+l] != init[l] {
			t.Fatalf("seed 3 lane %d changed: %v vs %v", l, res.Values[3*4+l], init[l])
		}
	}
}

func TestAblationConfigsStayCorrect(t *testing.T) {
	g, err := gen.Skewed(gen.SkewedConfig{
		N: 800, M: 6000,
		RegularFrac: 0.4, SeedFrac: 0.3, SinkFrac: 0.2,
		ZipfS: 1.25, ZipfV: 1, Seed: 23,
	})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := New(g, Config{Side: 64})
	if err != nil {
		t.Fatal(err)
	}
	want, err := ref.Run(algo.NewInDegree(3))
	if err != nil {
		t.Fatal(err)
	}
	configs := map[string]Config{
		"no-cache":       {Side: 64, DisableCache: true},
		"no-compression": {Side: 64, DisableCompression: true},
		"no-huborder":    {Side: 64, DisableHubOrder: true},
		"degree-sort":    {Side: 64, DegreeSortOrder: true},
		"no-splitting":   {Side: 64, MaxLoadFactor: -1},
		"small-blocks":   {Side: 16},
		"one-block":      {Side: 1 << 20},
	}
	for name, cfg := range configs {
		e, err := New(g, cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		got, err := e.Run(algo.NewInDegree(3))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for v := range want.Values {
			if !relClose(got.Values[v], want.Values[v], 1e-9) {
				t.Fatalf("%s: node %d = %v, want %v", name, v, got.Values[v], want.Values[v])
			}
		}
	}
}

func TestActiveTrackingSkipsAndStaysCorrect(t *testing.T) {
	// A long bidirected chain: the BFS frontier touches one segment at a
	// time, so most block-rows must be skipped once tracking kicks in.
	n := 4096
	var edges []graph.Edge
	for i := 0; i < n-1; i++ {
		edges = append(edges,
			graph.Edge{Src: graph.Node(i), Dst: graph.Node(i + 1)},
			graph.Edge{Src: graph.Node(i + 1), Dst: graph.Node(i)})
	}
	g, err := graph.FromEdges(n, edges)
	if err != nil {
		t.Fatal(err)
	}
	tracked, err := New(g, Config{Side: 256})
	if err != nil {
		t.Fatal(err)
	}
	resT, err := tracked.Run(algo.NewBFS(g, 0))
	if err != nil {
		t.Fatal(err)
	}
	if tracked.SkippedBlocks.Load() == 0 {
		t.Fatal("activity mask never skipped a block on a chain BFS")
	}
	untracked, err := New(g, Config{Side: 256, DisableActiveTracking: true})
	if err != nil {
		t.Fatal(err)
	}
	resU, err := untracked.Run(algo.NewBFS(g, 0))
	if err != nil {
		t.Fatal(err)
	}
	if untracked.SkippedBlocks.Load() != 0 {
		t.Fatal("tracking disabled but blocks were skipped")
	}
	for v := range resT.Values {
		if resT.Values[v] != resU.Values[v] {
			t.Fatalf("node %d: tracked %v, untracked %v", v, resT.Values[v], resU.Values[v])
		}
	}
	// On the chain, levels are exactly the node index.
	if resT.Values[100] != 100 || resT.Values[n-1] != float64(n-1) {
		t.Fatalf("chain levels wrong: %v, %v", resT.Values[100], resT.Values[n-1])
	}
}

func TestActiveTrackingSumRing(t *testing.T) {
	// PageRank with convergence: once segments stop changing they must be
	// skipped without altering the fixed point.
	g, err := gen.Skewed(gen.SkewedConfig{
		N: 2000, M: 12000,
		RegularFrac: 0.5, SeedFrac: 0.3, SinkFrac: 0.15,
		ZipfS: 1.25, ZipfV: 1, Seed: 52,
	})
	if err != nil {
		t.Fatal(err)
	}
	a, err := New(g, Config{Side: 64})
	if err != nil {
		t.Fatal(err)
	}
	resA, err := a.Run(algo.NewPageRank(g, 0.85, 1e-12, 500))
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(g, Config{Side: 64, DisableActiveTracking: true})
	if err != nil {
		t.Fatal(err)
	}
	resB, err := b.Run(algo.NewPageRank(g, 0.85, 1e-12, 500))
	if err != nil {
		t.Fatal(err)
	}
	for v := range resA.Values {
		if !relClose(resA.Values[v], resB.Values[v], 1e-9) {
			t.Fatalf("node %d: tracked %v, untracked %v", v, resA.Values[v], resB.Values[v])
		}
	}
}

func TestEngineEmptyGraph(t *testing.T) {
	g, err := graph.FromEdges(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(g, Config{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(algo.NewInDegree(2))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Values) != 0 {
		t.Fatal("empty graph must yield empty values")
	}
}

func TestEngineAllIsolated(t *testing.T) {
	g, err := graph.FromEdges(7, nil)
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(g, Config{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(algo.NewInDegree(2))
	if err != nil {
		t.Fatal(err)
	}
	for v, val := range res.Values {
		if val != 1 {
			t.Fatalf("isolated node %d = %v, want 1 (init)", v, val)
		}
	}
}

func TestEngineRejectsZeroWidth(t *testing.T) {
	g := tiny(t)
	e, err := New(g, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(&badWidthProg{}); err == nil {
		t.Fatal("expected error for width 0")
	}
}

type badWidthProg struct{ algo.InDegree }

func (*badWidthProg) Width() int { return 0 }

func TestDeterministicAcrossRuns(t *testing.T) {
	g, err := gen.RMAT(gen.GAPRMATConfig(9, 8, 31))
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(g, Config{})
	if err != nil {
		t.Fatal(err)
	}
	a, err := e.Run(algo.NewPageRank(g, 0.85, 0, 10))
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.Run(algo.NewPageRank(g, 0.85, 0, 10))
	if err != nil {
		t.Fatal(err)
	}
	for v := range a.Values {
		if a.Values[v] != b.Values[v] {
			t.Fatalf("node %d differs across identical runs", v)
		}
	}
}

func TestRunWithStatsPhases(t *testing.T) {
	g, err := gen.Skewed(gen.SkewedConfig{
		N: 1500, M: 10000,
		RegularFrac: 0.4, SeedFrac: 0.3, SinkFrac: 0.2,
		ZipfS: 1.25, ZipfV: 1, Seed: 71,
	})
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(g, Config{})
	if err != nil {
		t.Fatal(err)
	}
	res, stats, err := e.RunWithStats(algo.NewInDegree(4))
	if err != nil {
		t.Fatal(err)
	}
	if stats.MainIterations != res.Iterations || res.Iterations != 4 {
		t.Fatalf("iterations: stats %d, result %d", stats.MainIterations, res.Iterations)
	}
	if stats.PreTime <= 0 || stats.MainTime <= 0 || stats.PostTime <= 0 {
		t.Fatalf("phase timings must be positive: %+v", stats)
	}
	// Main-Phase dominates on an iterative run.
	if stats.MainTime < stats.PostTime {
		t.Fatalf("main %v < post %v on a 4-iteration run", stats.MainTime, stats.PostTime)
	}
}

func TestEngineReuseAcrossWidths(t *testing.T) {
	g := tiny(t)
	e, err := New(g, Config{Side: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Scalar run, then a CF run (width 4), then scalar again: the bins must
	// resize transparently and results stay correct.
	first, err := e.Run(algo.NewInDegree(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(algo.NewCF(g, 4, 2)); err != nil {
		t.Fatal(err)
	}
	again, err := e.Run(algo.NewInDegree(1))
	if err != nil {
		t.Fatal(err)
	}
	for v := range first.Values {
		if first.Values[v] != again.Values[v] {
			t.Fatalf("node %d changed after width round trip", v)
		}
	}
}

func TestPrepStatsPopulated(t *testing.T) {
	g, err := gen.RMAT(gen.GAPRMATConfig(10, 8, 33))
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(g, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if e.Prep.Total() <= 0 {
		t.Fatal("preprocessing time must be positive")
	}
	if e.Prep.Total() != e.Prep.FilterTime+e.Prep.PartitionTime {
		t.Fatal("total must be the sum of phases")
	}
}

func TestTrafficModelsPositive(t *testing.T) {
	g := tiny(t)
	e, err := New(g, Config{Side: 2})
	if err != nil {
		t.Fatal(err)
	}
	if e.TrafficPerIteration() <= 0 {
		t.Fatal("traffic model must be positive for a non-empty graph")
	}
	if e.RandomAccessesPerIteration() <= 0 {
		t.Fatal("random access model must be positive")
	}
}

func relClose(a, b, tol float64) bool {
	if a == b {
		return true
	}
	d := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	if scale < 1 {
		scale = 1
	}
	return d <= tol*scale
}

package core

import (
	"fmt"
	"math"
	"sort"
	"time"

	"mixen/internal/block"
	"mixen/internal/filter"
	"mixen/internal/obs"
	"mixen/internal/vprog"
)

// Measured auto-tuning of the block side (Config.AutoTune).
//
// The paper's cache indicator c — the block side — trades Scatter locality
// (larger blocks stream longer source runs) against Gather working-set
// (smaller blocks keep one output segment cache-resident). DefaultSide is a
// heuristic over r and the thread count; the tuner replaces it with a
// measurement: build a partition per candidate side, run a few probe
// Main-Phase iterations on each, keep the fastest. The winning partition is
// handed back to the constructor so tuning never builds the final partition
// twice (on sharded engines only the chosen SIDE is reused — the sharding
// rebuilds its own partitions at that side).
const (
	// tuneProbeIters is how many Main-Phase iterations one probe repetition
	// times; tuneProbeRepeats repeats and keeps the minimum (classic
	// best-of-k to shed scheduler noise).
	tuneProbeIters   = 3
	tuneProbeRepeats = 2
	// tuneMinSide/tuneMaxSide bound the power-of-two candidate ladder.
	// DefaultSide's own range is [256, 32768]; the ladder starts one octave
	// above its floor because sides below 512 only win on submatrices small
	// enough that DefaultSide (always a candidate) already lands there.
	tuneMinSide = 512
	tuneMaxSide = 32768
)

// SideTrial is one row of the auto-tuner's trial table (Engine.Tuned): a
// candidate block side, its partition geometry and build cost, and the
// measured probe time (best-of-tuneProbeRepeats over tuneProbeIters dense
// Main-Phase iterations).
type SideTrial struct {
	Side      int
	Blocks    int // block-grid dimension B at this side
	BuildTime time.Duration
	ProbeTime time.Duration
	Chosen    bool
}

// TunedSide returns the block side the measured auto-tuner selected, or 0
// when tuning did not run (AutoTune off, explicit Side, or an empty
// regular range).
func (e *Engine) TunedSide() int { return e.tunedSide }

// CandidateSides returns the auto-tuner's candidate ladder for a regular
// range of size r: DefaultSide plus powers of two in [tuneMinSide,
// tuneMaxSide], ascending, truncated after the first side >= r (every
// larger side collapses the grid to the same single-block layout). Exported
// so the predicted tuner (internal/tune) and the exhaustive bench sweep
// rank exactly the sides the measured tuner considers.
func CandidateSides(r, threads int) []int { return tuneCandidateSides(r, threads) }

// tuneCandidateSides returns the candidate ladder for a regular range of
// size r: DefaultSide plus powers of two in [tuneMinSide, tuneMaxSide],
// ascending, truncated after the first side >= r (every larger side
// collapses the grid to the same single-block layout).
func tuneCandidateSides(r, threads int) []int {
	seen := make(map[int]bool)
	var sides []int
	add := func(s int) {
		if s > 0 && !seen[s] {
			seen[s] = true
			sides = append(sides, s)
		}
	}
	add(block.DefaultSide(r, threads))
	for s := tuneMinSide; s <= tuneMaxSide; s *= 2 {
		add(s)
	}
	sort.Ints(sides)
	for i, s := range sides {
		if s >= r {
			return sides[:i+1]
		}
	}
	return sides
}

// tuneProbe is the tuner's measurement program: in-degree counting — width
// 1, Sum ring, constant unit inputs — so one probe iteration is exactly one
// SCGA sweep with the cheapest possible Apply, isolating the partition's
// memory behaviour. MaxIter 1: the single RunInWorkspace call only exists
// to initialise the workspace; the timed iterations drive the main loop
// directly.
type tuneProbe struct{}

func (tuneProbe) Width() int                   { return 1 }
func (tuneProbe) Ring() vprog.Ring             { return vprog.Sum }
func (tuneProbe) Init(_ uint32, out []float64) { out[0] = 1 }
func (tuneProbe) Scale(uint32) float64         { return 1 }
func (tuneProbe) Apply(_ uint32, sum, prev, out []float64) float64 {
	d := math.Abs(sum[0] - prev[0])
	out[0] = sum[0]
	return d
}
func (tuneProbe) Converged(float64, int) bool { return false }
func (tuneProbe) MaxIter() int                { return 1 }

// autotuneSide measures every candidate side on f and returns the trial
// table plus the winning partition (nil when the regular range is empty and
// there is nothing to tune). Probe engines force the dense Scatter path
// (tracking off): the in-degree probe quiesces after one iteration, and the
// block side shapes the dense sweep's locality — the frontier machinery is
// orthogonal to the choice.
func autotuneSide(f *filter.Filtered, cfg Config) ([]SideTrial, *block.Partition, error) {
	if f.NumRegular == 0 {
		return nil, nil, nil
	}
	pcfg := cfg
	pcfg.AutoTune = false
	pcfg.Trace = false
	pcfg.Collector = nil
	pcfg.DisableActiveTracking = true

	sides := tuneCandidateSides(f.NumRegular, cfg.Threads)
	trials := make([]SideTrial, 0, len(sides))
	var best *block.Partition
	bestIdx := -1
	for _, side := range sides {
		bcfg := block.Config{
			Side:               side,
			MaxLoadFactor:      cfg.MaxLoadFactor,
			DisableCompression: cfg.DisableCompression,
			Threads:            cfg.Threads,
		}
		t0 := time.Now()
		p, err := block.NewPartition(f.RegPtr, f.RegIdx, f.NumRegular, bcfg)
		if err != nil {
			return nil, nil, fmt.Errorf("side %d: %w", side, err)
		}
		build := time.Since(t0)
		probe, err := probeMainPhase(f, p, pcfg)
		if err != nil {
			return nil, nil, fmt.Errorf("side %d: %w", side, err)
		}
		trials = append(trials, SideTrial{Side: side, Blocks: p.B, BuildTime: build, ProbeTime: probe})
		if bestIdx < 0 || probe < trials[bestIdx].ProbeTime {
			bestIdx = len(trials) - 1
			best = p
		}
	}
	trials[bestIdx].Chosen = true
	return trials, best, nil
}

// probeMainPhase times tuneProbeIters dense Main-Phase iterations on a
// throwaway engine wrapping (f, p), best of tuneProbeRepeats. The
// RunInWorkspace call initialises the workspace (property arrays, scale
// factors, static bins); the timed loop then drives iterateMain — the
// zero-allocation hot path the real runs use — directly.
func probeMainPhase(f *filter.Filtered, p *block.Partition, pcfg Config) (time.Duration, error) {
	e := &Engine{cfg: pcfg, F: f, P: p}
	e.SetCollector(obs.Default(nil))
	ws, err := e.NewWorkspace(1)
	if err != nil {
		return 0, err
	}
	if _, _, err := e.RunInWorkspace(tuneProbe{}, ws); err != nil {
		return 0, err
	}
	best := time.Duration(math.MaxInt64)
	for rep := 0; rep < tuneProbeRepeats; rep++ {
		t0 := time.Now()
		for i := 0; i < tuneProbeIters; i++ {
			ws.rc.iterateMain()
		}
		if d := time.Since(t0); d < best {
			best = d
		}
	}
	return best, nil
}

package core

import (
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"mixen/internal/algo"
	"mixen/internal/obs"
	"mixen/internal/vprog"
)

// TestBatcherMaxWaitFlushesSingleRequest: a lone submission must not hang
// waiting for companions — the MaxWait deadline flushes a batch of one,
// and its result matches the standalone run bit-for-bit.
func TestBatcherMaxWaitFlushesSingleRequest(t *testing.T) {
	g := skewedForConcurrency(t)
	e, err := New(g, Config{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := e.Run(algo.NewPersonalizedPageRank(g, 3, 0.85, 0, 10))
	if err != nil {
		t.Fatal(err)
	}
	b := NewBatcher(e, BatcherConfig{MaxBatch: 16, MaxWait: 2 * time.Millisecond})
	defer b.Close()
	fut, err := b.Submit(algo.NewPersonalizedPageRank(g, 3, 0.85, 0, 10))
	if err != nil {
		t.Fatal(err)
	}
	res, err := fut.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if fut.BatchSize() != 1 {
		t.Fatalf("batch size %d, want 1", fut.BatchSize())
	}
	if !sameValues(res.Values, want.Values) {
		t.Fatal("deadline-flushed single query differs from standalone run")
	}
}

// TestBatcherConcurrentSubmits races many Submit callers against full and
// deadline flushes (the -race test for the queue/timer handoff). Every
// future must resolve to its query's standalone result regardless of which
// batch it landed in.
func TestBatcherConcurrentSubmits(t *testing.T) {
	old := runtime.GOMAXPROCS(4) // force real parallelism even on a 1-core host
	defer runtime.GOMAXPROCS(old)

	g := skewedForConcurrency(t)
	e, err := New(g, Config{})
	if err != nil {
		t.Fatal(err)
	}
	const nq = 24
	sources := make([]uint32, nq)
	refs := make([][]float64, nq)
	for i := range sources {
		sources[i] = uint32((i * 37) % g.NumNodes())
		res, err := e.Run(algo.NewPersonalizedPageRank(g, sources[i], 0.85, 0, 8))
		if err != nil {
			t.Fatal(err)
		}
		refs[i] = res.Values
	}

	// MaxBatch 4 with a short deadline: some flushes fill up, others fire
	// on the timer, and Submits race both.
	b := NewBatcher(e, BatcherConfig{MaxBatch: 4, MaxWait: 100 * time.Microsecond})
	defer b.Close()

	var wg sync.WaitGroup
	errs := make([]error, nq)
	bad := make([]bool, nq)
	for i := 0; i < nq; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			fut, err := b.Submit(algo.NewPersonalizedPageRank(g, sources[i], 0.85, 0, 8))
			if err != nil {
				errs[i] = err
				return
			}
			res, err := fut.Wait()
			if err != nil {
				errs[i] = err
				return
			}
			if !sameValues(res.Values, refs[i]) {
				bad[i] = true
			}
		}(i)
	}
	wg.Wait()
	for i := 0; i < nq; i++ {
		if errs[i] != nil {
			t.Fatalf("query %d: %v", i, errs[i])
		}
		if bad[i] {
			t.Errorf("query %d: batched result differs from standalone run", i)
		}
	}
}

// TestBatcherRejectsMixedWidths: a Batcher serves one per-query width; a
// program with a different width must be rejected with a clear error, not
// silently queued into an incompatible batch.
func TestBatcherRejectsMixedWidths(t *testing.T) {
	g := skewedForConcurrency(t)
	e, err := New(g, Config{})
	if err != nil {
		t.Fatal(err)
	}
	b := NewBatcher(e, BatcherConfig{Width: 1, MaxWait: time.Second})
	defer b.Close()
	_, err = b.Submit(algo.NewCF(g, 4, 3)) // width-4 program into a width-1 batcher
	if err == nil || !strings.Contains(err.Error(), "mixed widths") {
		t.Fatalf("want mixed-width rejection, got %v", err)
	}
	if _, err := b.Submit(nil); err == nil {
		t.Fatal("nil program must be rejected")
	}
}

// TestBatcherClosedRejectsSubmit: Close drains pending queries, completes
// their futures, and rejects later submissions.
func TestBatcherClosedRejectsSubmit(t *testing.T) {
	g := skewedForConcurrency(t)
	e, err := New(g, Config{})
	if err != nil {
		t.Fatal(err)
	}
	b := NewBatcher(e, BatcherConfig{MaxBatch: 16, MaxWait: time.Minute})
	fut, err := b.Submit(algo.NewPersonalizedPageRank(g, 1, 0.85, 0, 5))
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := fut.Wait(); err != nil {
		t.Fatalf("pending future must complete on Close: %v", err)
	}
	if _, err := b.Submit(algo.NewPersonalizedPageRank(g, 2, 0.85, 0, 5)); err == nil {
		t.Fatal("submit after Close must fail")
	}
}

// TestBatcherImmediateFlushMode: MaxWait <= 0 flushes each submission
// without waiting (batching only what was already queued).
func TestBatcherImmediateFlushMode(t *testing.T) {
	g := skewedForConcurrency(t)
	e, err := New(g, Config{})
	if err != nil {
		t.Fatal(err)
	}
	b := NewBatcher(e, BatcherConfig{MaxBatch: 16, MaxWait: -1})
	defer b.Close()
	fut, err := b.Submit(algo.NewPersonalizedPageRank(g, 0, 0.85, 0, 5))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fut.Wait(); err != nil {
		t.Fatal(err)
	}
	if fut.BatchSize() != 1 {
		t.Fatalf("immediate mode batch size %d, want 1", fut.BatchSize())
	}
}

// TestBatcherRecordsMetrics: the serving counters flow through the
// engine's collector — query/flush counts, the size histogram, and the
// fused vs serial-equivalent traffic model (fused must not exceed serial;
// that gap is the whole point of batching).
func TestBatcherRecordsMetrics(t *testing.T) {
	g := skewedForConcurrency(t)
	reg := obs.NewRegistry()
	e, err := New(g, Config{Collector: reg})
	if err != nil {
		t.Fatal(err)
	}
	b := NewBatcher(e, BatcherConfig{MaxBatch: 4, MaxWait: time.Second})
	defer b.Close()
	const k = 4
	futs := make([]*Future, k)
	for i := 0; i < k; i++ {
		futs[i], err = b.Submit(algo.NewPersonalizedPageRank(g, uint32(i), 0.85, 0, 6))
		if err != nil {
			t.Fatal(err)
		}
	}
	for _, fut := range futs {
		if _, err := fut.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	s := reg.Snapshot()
	if got := s.Counters["batch.queries"]; got != k {
		t.Errorf("batch.queries = %d, want %d", got, k)
	}
	if got := s.Counters["batch.flushes"]; got != 1 {
		t.Errorf("batch.flushes = %d, want 1", got)
	}
	if got := s.Histograms["batch.size"].Sum; got != k {
		t.Errorf("batch.size sum = %d, want %d", got, k)
	}
	if got := s.Histograms["batch.queue_wait_ns"].Count; got != k {
		t.Errorf("batch.queue_wait_ns count = %d, want %d", got, k)
	}
	fused := s.Counters["batch.fused_traffic_bytes"]
	serial := s.Counters["batch.serial_equiv_traffic_bytes"]
	if fused <= 0 || serial <= 0 {
		t.Fatalf("traffic counters must be positive: fused=%d serial=%d", fused, serial)
	}
	if fused >= serial {
		t.Errorf("fused traffic %d should undercut the serial equivalent %d", fused, serial)
	}
}

// TestBatchedMainPhaseAllocatesNothing asserts the fused run's
// zero-allocation steady state: once a width-K batch is bound into a
// pooled wide workspace, each Main-Phase iteration of the fused pass
// performs zero heap allocations — long-lived serving loops reuse the wide
// workspace instead of reallocating per flush.
func TestBatchedMainPhaseAllocatesNothing(t *testing.T) {
	g := skewedForConcurrency(t)
	e, err := New(g, Config{Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	const k = 4
	progs := make([]vprog.Program, k)
	for i := range progs {
		progs[i] = algo.NewPersonalizedPageRank(g, uint32(i), 0.85, 0, 8)
	}
	bp, err := vprog.NewBatch(g.NumNodes(), progs...)
	if err != nil {
		t.Fatal(err)
	}
	pool := e.workspacePool(k)
	ws := pool.Get().(*Workspace)
	defer pool.Put(ws)
	// Warm up: bind the fused run into the workspace.
	if _, _, err := e.RunInWorkspace(bp, ws); err != nil {
		t.Fatal(err)
	}
	bp.Reset()
	allocs := testing.AllocsPerRun(50, func() {
		ws.rc.iterateMain()
	})
	if allocs != 0 {
		t.Fatalf("fused main-phase iteration allocated %.1f times per run, want 0", allocs)
	}
}

// TestBatcherSharedTraceSpansNotDuplicated: two lanes of one multi-source
// request share a single trace via their common context. The trace gets one
// queue span per lane (each lane's own wait is real) but must appear in the
// fused run's trace list once — otherwise fuse/demux and every engine span
// double and the span cap burns at 2x rate.
func TestBatcherSharedTraceSpansNotDuplicated(t *testing.T) {
	g := skewedForConcurrency(t)
	e, err := New(g, Config{})
	if err != nil {
		t.Fatal(err)
	}
	b := NewBatcher(e, BatcherConfig{MaxBatch: 2, MaxWait: 50 * time.Millisecond})
	defer b.Close()

	tracer := obs.NewTracer(4, 1)
	tr := tracer.Start(tracer.NextID(), "ppr")
	ctx := obs.WithTrace(t.Context(), tr)

	const iters = 5
	fut1, err := b.SubmitCtx(ctx, algo.NewPersonalizedPageRank(g, 3, 0.85, 0, iters))
	if err != nil {
		t.Fatal(err)
	}
	fut2, err := b.SubmitCtx(ctx, algo.NewPersonalizedPageRank(g, 7, 0.85, 0, iters))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fut1.Wait(); err != nil {
		t.Fatal(err)
	}
	if _, err := fut2.Wait(); err != nil {
		t.Fatal(err)
	}
	tracer.Finish(tr, "ok")

	snap := tracer.Ring().Snapshot()
	if len(snap) != 1 {
		t.Fatalf("ring holds %d traces, want 1", len(snap))
	}
	counts := map[obs.SpanKind]int{}
	for _, s := range snap[0].Spans {
		counts[s.Kind]++
	}
	if counts[obs.SpanQueue] != 2 {
		t.Errorf("queue spans = %d, want 2 (one per lane)", counts[obs.SpanQueue])
	}
	for _, k := range []obs.SpanKind{obs.SpanFuse, obs.SpanDemux, obs.SpanPrePhase} {
		if counts[k] != 1 {
			t.Errorf("%s spans = %d, want 1", k, counts[k])
		}
	}
	if counts[obs.SpanIteration] != iters {
		t.Errorf("iteration spans = %d, want %d", counts[obs.SpanIteration], iters)
	}
}

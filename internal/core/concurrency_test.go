package core

import (
	"runtime"
	"sync"
	"testing"

	"mixen/internal/algo"
	"mixen/internal/gen"
	"mixen/internal/graph"
)

func skewedForConcurrency(t *testing.T) *graph.Graph {
	t.Helper()
	g, err := gen.Skewed(gen.SkewedConfig{
		N: 1500, M: 12000,
		RegularFrac: 0.4, SeedFrac: 0.3, SinkFrac: 0.2,
		ZipfS: 1.3, ZipfV: 1, Seed: 99,
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func sameValues(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestConcurrentRunsMatchSerial is the -race regression test for the
// immutable-partition refactor: PageRank and InDegree run concurrently on
// ONE shared engine, and every concurrent result must be bit-identical to
// its serial counterpart. On the old design this raced on P.SetWidth /
// P.Sta / sub-block bin values and produced corrupt results.
func TestConcurrentRunsMatchSerial(t *testing.T) {
	old := runtime.GOMAXPROCS(4) // force real parallelism even on a 1-core host
	defer runtime.GOMAXPROCS(old)

	g := skewedForConcurrency(t)
	e, err := New(g, Config{})
	if err != nil {
		t.Fatal(err)
	}

	newPR := func() *algo.PageRank { return algo.NewPageRank(g, 0.85, 0, 20) }
	newIN := func() *algo.InDegree { return algo.NewInDegree(5) }

	serialPR, err := e.Run(newPR())
	if err != nil {
		t.Fatal(err)
	}
	serialIN, err := e.Run(newIN())
	if err != nil {
		t.Fatal(err)
	}

	const pairs = 4
	prResults := make([][]float64, pairs)
	inResults := make([][]float64, pairs)
	errs := make([]error, 2*pairs)
	var wg sync.WaitGroup
	for i := 0; i < pairs; i++ {
		wg.Add(2)
		go func(i int) {
			defer wg.Done()
			res, err := e.Run(newPR())
			if err != nil {
				errs[2*i] = err
				return
			}
			prResults[i] = res.Values
		}(i)
		go func(i int) {
			defer wg.Done()
			res, err := e.Run(newIN())
			if err != nil {
				errs[2*i+1] = err
				return
			}
			inResults[i] = res.Values
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < pairs; i++ {
		if !sameValues(prResults[i], serialPR.Values) {
			t.Errorf("concurrent PageRank run %d differs from serial result", i)
		}
		if !sameValues(inResults[i], serialIN.Values) {
			t.Errorf("concurrent InDegree run %d differs from serial result", i)
		}
	}
}

// TestRunInWorkspaceReuse verifies the explicit-workspace path: repeated
// runs in one workspace reproduce the pooled-path results exactly, and the
// returned values alias the workspace buffer (the documented contract).
func TestRunInWorkspaceReuse(t *testing.T) {
	g := skewedForConcurrency(t)
	e, err := New(g, Config{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := e.Run(algo.NewPageRank(g, 0.85, 0, 15))
	if err != nil {
		t.Fatal(err)
	}
	ws, err := e.NewWorkspace(1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		res, _, err := e.RunInWorkspace(algo.NewPageRank(g, 0.85, 0, 15), ws)
		if err != nil {
			t.Fatal(err)
		}
		if !sameValues(res.Values, want.Values) {
			t.Fatalf("workspace run %d differs from pooled run", i)
		}
		if &res.Values[0] != &ws.out[0] {
			t.Fatal("RunInWorkspace values should alias the workspace buffer")
		}
	}
}

// TestRunInWorkspaceValidation locks in the misuse errors: zero width at
// construction, width mismatch at run time, and foreign workspaces.
func TestRunInWorkspaceValidation(t *testing.T) {
	g := skewedForConcurrency(t)
	e, err := New(g, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.NewWorkspace(0); err == nil {
		t.Fatal("NewWorkspace(0) should fail")
	}
	ws, err := e.NewWorkspace(4)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := e.RunInWorkspace(algo.NewInDegree(2), ws); err == nil {
		t.Fatal("width-1 program in a width-4 workspace should fail")
	}
	e2, err := New(g, Config{})
	if err != nil {
		t.Fatal(err)
	}
	ws1, err := e.NewWorkspace(1)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := e2.RunInWorkspace(algo.NewInDegree(2), ws1); err == nil {
		t.Fatal("foreign workspace should be rejected")
	}
}

// TestMainPhaseIterationAllocatesNothing asserts the zero-allocation
// steady state the workspace refactor exists for: with a reused workspace,
// one full Main-Phase iteration (Scatter + Cache + Gather/Apply over
// prebuilt loop bodies and pooled scheduler jobs) performs zero heap
// allocations. Threads is pinned to 1 so the measurement is deterministic;
// the parallel path reuses pooled job descriptors and allocates only when
// helper wakeups outrun the free list.
func TestMainPhaseIterationAllocatesNothing(t *testing.T) {
	g := skewedForConcurrency(t)
	e, err := New(g, Config{Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	ws, err := e.NewWorkspace(1)
	if err != nil {
		t.Fatal(err)
	}
	// Warm up: bind a run into the workspace so rc holds a live program,
	// masks, and swapped property arrays.
	if _, _, err := e.RunInWorkspace(algo.NewPageRank(g, 0.85, 0, 10), ws); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(50, func() {
		ws.rc.iterateMain()
	})
	if allocs != 0 {
		t.Fatalf("main-phase iteration allocated %.1f times per run, want 0", allocs)
	}
}

package core

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"testing"

	"mixen/internal/algo"
	"mixen/internal/gen"
	"mixen/internal/graph"
	"mixen/internal/vprog"
)

// frontierGraph builds a random skewed graph from a seed, the shared input
// of the sparse-vs-dense equivalence tests.
func frontierGraph(t testing.TB, n int, m int64, zipfS float64, seed int64) *graph.Graph {
	t.Helper()
	g, err := gen.Skewed(gen.SkewedConfig{
		N: n, M: m,
		RegularFrac: 0.5, SeedFrac: 0.25, SinkFrac: 0.15,
		ZipfS: zipfS, ZipfV: 1, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// runBoth runs prog-producing thunks on a sparse-enabled and an
// always-dense engine with otherwise identical configuration and requires
// bit-identical values. newProg is called once per engine so stateful
// programs (BFS, Batch) start fresh.
func runBoth(t *testing.T, g *graph.Graph, cfg Config, name string, newProg func() vprog.Program) {
	t.Helper()
	dense := cfg
	dense.DisableSparse = true
	eS, err := New(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	eD, err := New(g, dense)
	if err != nil {
		t.Fatal(err)
	}
	resS, statsS, err := eS.RunWithStats(newProg())
	if err != nil {
		t.Fatalf("%s sparse: %v", name, err)
	}
	resD, statsD, err := eD.RunWithStats(newProg())
	if err != nil {
		t.Fatalf("%s dense: %v", name, err)
	}
	if resS.Iterations != resD.Iterations || resS.Delta != resD.Delta {
		t.Errorf("%s: convergence differs: sparse (%d, %g) dense (%d, %g)",
			name, resS.Iterations, resS.Delta, resD.Iterations, resD.Delta)
	}
	if !sameValues(resS.Values, resD.Values) {
		t.Errorf("%s: sparse values differ from dense", name)
	}
	if statsS.ScatterEntries > statsD.ScatterEntries {
		t.Errorf("%s: sparse scattered %d entries, dense only %d",
			name, statsS.ScatterEntries, statsD.ScatterEntries)
	}
	if statsS.GatherEdges > statsD.GatherEdges {
		t.Errorf("%s: sparse gathered %d edges, dense only %d",
			name, statsS.GatherEdges, statsD.GatherEdges)
	}
}

// TestSparseMatchesDenseAllAlgorithms is the randomized equivalence sweep
// of the tentpole's bit-identity requirement: random skewed graphs, random
// Side / thread count / tolerance, every algorithm family, sparse vs
// always-dense — results (values, iteration count, final delta) must match
// bit for bit, including the Pre/Post phases the regular submatrix does
// not cover.
func TestSparseMatchesDenseAllAlgorithms(t *testing.T) {
	rng := rand.New(rand.NewSource(20260806))
	sides := []int{64, 128, 256, 512}
	for trial := 0; trial < 4; trial++ {
		n := 1000 + rng.Intn(3000)
		m := int64(n * (4 + rng.Intn(8)))
		cfg := Config{
			Side:    sides[rng.Intn(len(sides))],
			Threads: 1 + rng.Intn(4),
			// Random threshold, including one forced-sparse extreme: with
			// SparseDensity near 1 every non-quiescent row goes sparse
			// after the first iteration, stressing the sparse body far
			// beyond the tuned default.
			SparseDensity: []float64{0, 0.2, 0.99}[trial%3],
		}
		g := frontierGraph(t, n, m, 1.1+rng.Float64(), rng.Int63())
		tol := []float64{0, 1e-8, 1e-4}[rng.Intn(3)]
		name := fmt.Sprintf("trial%d(side=%d,thr=%d,sd=%g,tol=%g)",
			trial, cfg.Side, cfg.Threads, cfg.SparseDensity, tol)
		runBoth(t, g, cfg, name+"/pagerank", func() vprog.Program {
			return algo.NewPageRank(g, 0.85, tol, 120)
		})
		runBoth(t, g, cfg, name+"/indegree", func() vprog.Program {
			return algo.NewInDegree(6)
		})
		bfsSrc := uint32(rng.Intn(n))
		runBoth(t, g, cfg, name+"/bfs", func() vprog.Program {
			return algo.NewBFS(g, bfsSrc)
		})
		runBoth(t, g, cfg, name+"/cc", func() vprog.Program {
			return algo.NewCC(g)
		})
		runBoth(t, g, cfg, name+"/cf", func() vprog.Program {
			return algo.NewCF(g, 4, 5)
		})
	}
}

// TestSparseMatchesDenseBatched covers width>1 fused execution: a width-K
// personalized-PageRank batch (per-lane tolerance freezing) must be
// bit-identical between the sparse and always-dense engines, lane by lane.
func TestSparseMatchesDenseBatched(t *testing.T) {
	g := frontierGraph(t, 2500, 20000, 1.3, 777)
	sources := []uint32{3, 99, 512, 1044}
	for _, sd := range []float64{0, 0.99} {
		cfgS := Config{Side: 128, Threads: 3, SparseDensity: sd}
		cfgD := cfgS
		cfgD.DisableSparse = true
		eS, err := New(g, cfgS)
		if err != nil {
			t.Fatal(err)
		}
		eD, err := New(g, cfgD)
		if err != nil {
			t.Fatal(err)
		}
		resS, err := algo.PersonalizedPageRankBatch(eS, g, sources, 0.85, 1e-7, 100)
		if err != nil {
			t.Fatal(err)
		}
		resD, err := algo.PersonalizedPageRankBatch(eD, g, sources, 0.85, 1e-7, 100)
		if err != nil {
			t.Fatal(err)
		}
		for i := range sources {
			if !sameValues(resS[i].Values, resD[i].Values) {
				t.Errorf("sd=%g lane %d: batched sparse values differ from dense", sd, i)
			}
			if resS[i].Iterations != resD[i].Iterations {
				t.Errorf("sd=%g lane %d: iterations %d vs %d", sd, i, resS[i].Iterations, resD[i].Iterations)
			}
		}
	}
}

// FuzzSparseDense fuzzes the equivalence over graph shape and engine
// configuration. The corpus pins the regimes that matter (tiny sides,
// forced sparse, single-threaded, high skew); the fuzzer then mutates
// freely.
func FuzzSparseDense(f *testing.F) {
	f.Add(int64(1), uint16(900), uint8(4), uint8(64), uint8(2), false, uint8(1))
	f.Add(int64(42), uint16(2000), uint8(8), uint8(16), uint8(1), true, uint8(0))
	f.Add(int64(7), uint16(300), uint8(12), uint8(255), uint8(4), true, uint8(2))
	f.Fuzz(func(t *testing.T, seed int64, n16 uint16, degree, side8, threads uint8, forceSparse bool, tolSel uint8) {
		n := 200 + int(n16)%4000
		m := int64(n) * (1 + int64(degree)%12)
		side := 16 * (1 + int(side8)%32)
		g, err := gen.Skewed(gen.SkewedConfig{
			N: n, M: m,
			RegularFrac: 0.5, SeedFrac: 0.25, SinkFrac: 0.15,
			ZipfS: 1.2, ZipfV: 1, Seed: seed,
		})
		if err != nil {
			t.Skip() // degenerate generator parameters
		}
		cfg := Config{Side: side, Threads: 1 + int(threads)%4}
		if forceSparse {
			cfg.SparseDensity = 0.99
		}
		tol := []float64{0, 1e-8, 1e-4, 1e-2}[tolSel%4]
		runBoth(t, g, cfg, "fuzz/pagerank", func() vprog.Program {
			return algo.NewPageRank(g, 0.85, tol, 60)
		})
		bfsSrc := uint32((int(seed)%n + n) % n)
		runBoth(t, g, cfg, "fuzz/bfs", func() vprog.Program {
			return algo.NewBFS(g, bfsSrc)
		})
	})
}

// TestFrontierHysteresis white-boxes planIteration's mode decisions: a row
// crosses into sparse only below the enter threshold, exits only above 2×,
// and holds its previous mode in between (the hysteresis band). Quiet
// rows keep their sticky state.
func TestFrontierHysteresis(t *testing.T) {
	g := frontierGraph(t, 2000, 16000, 1.3, 5)
	e, err := New(g, Config{Side: 128, SparseDensity: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if e.P.SrcEntryIdx == nil {
		t.Fatal("source entry index not built")
	}
	ws, err := e.NewWorkspace(1)
	if err != nil {
		t.Fatal(err)
	}
	rc := &ws.rc
	rc.track, rc.canSparse, rc.first = true, true, false
	rc.threads = 1
	rc.sparseEnter, rc.sparseExit = 0.1, 0.2

	// Pick a block-row with entries and build a worklist of its first
	// sources covering a chosen fraction of the row's entries.
	row := -1
	for i := 0; i < e.P.B; i++ {
		if e.P.RowEntries[i] >= 20 {
			row = i
			break
		}
	}
	if row < 0 {
		t.Skip("no block-row with enough entries")
	}
	setFrontier := func(density float64) {
		for i := range rc.workLen {
			rc.workLen[i] = 0
			rc.workEnt[i] = 0
		}
		target := int64(density * float64(e.P.RowEntries[row]))
		sep := e.P.SrcEntryPtr
		cnt := 0
		var ent int64
		for v := row * e.P.Side; v < (row+1)*e.P.Side && v < e.F.NumRegular; v++ {
			if ent >= target {
				break
			}
			rc.work[row*e.P.Side+cnt] = int32(v)
			cnt++
			ent += sep[v+1] - sep[v]
		}
		if cnt == 0 { // ensure a non-empty frontier even for tiny targets
			rc.work[row*e.P.Side] = int32(row * e.P.Side)
			cnt = 1
			ent = sep[row*e.P.Side+1] - sep[row*e.P.Side]
		}
		rc.workLen[row] = int32(cnt)
		rc.workEnt[row] = ent
	}

	steps := []struct {
		density float64
		want    uint8
	}{
		{0.5, modeDense},  // far above enter: stays dense
		{0.15, modeDense}, // inside the band: holds dense
		{0.03, modeSparse},
		{0.15, modeSparse}, // inside the band: holds sparse
		{0.5, modeDense},   // above exit: back to dense
	}
	for si, s := range steps {
		setFrontier(s.density)
		rc.planIteration()
		if got := rc.rowMode[row]; got != s.want {
			t.Fatalf("step %d (density %.2f): rowMode = %d, want %d", si, s.density, got, s.want)
		}
	}

	// A quiescent interlude must not reset the sticky state.
	setFrontier(0.03)
	rc.planIteration()
	if rc.rowMode[row] != modeSparse {
		t.Fatal("setup: row should be sparse")
	}
	for i := range rc.workLen {
		rc.workLen[i] = 0
		rc.workEnt[i] = 0
	}
	rc.planIteration()
	if rc.rowMode[row] != modeEmpty {
		t.Fatal("empty frontier should skip the row")
	}
	setFrontier(0.15) // inside the band: resumes in the remembered mode
	rc.planIteration()
	if rc.rowMode[row] != modeSparse {
		t.Fatal("sticky state lost across a quiescent iteration")
	}
}

// TestSkippedBlocksSubBlockGranularity is the regression test for the
// SkippedBlocks unit: it is sub-blocks in every path. On a bidirected
// chain every block-row spans 2–3 sub-blocks, so a row-granularity count
// would be strictly smaller than the sub-block count the trace and stats
// must agree on.
func TestSkippedBlocksSubBlockGranularity(t *testing.T) {
	const n = 4096
	edges := make([]graph.Edge, 0, 2*(n-1))
	for i := 0; i < n-1; i++ {
		edges = append(edges, graph.Edge{Src: graph.Node(i), Dst: graph.Node(i + 1)})
		edges = append(edges, graph.Edge{Src: graph.Node(i + 1), Dst: graph.Node(i)})
	}
	g, err := graph.FromEdges(n, edges)
	if err != nil {
		t.Fatal(err)
	}
	prog := func() vprog.Program { return algo.NewBFS(g, 0) }

	eT, err := New(g, Config{Side: 256, Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	_, statsT, err := eT.RunWithStats(prog())
	if err != nil {
		t.Fatal(err)
	}
	eU, err := New(g, Config{Side: 256})
	if err != nil {
		t.Fatal(err)
	}
	_, statsU, err := eU.RunWithStats(prog())
	if err != nil {
		t.Fatal(err)
	}

	if statsT.SkippedBlocks == 0 {
		t.Fatal("BFS on a long chain should skip sub-blocks")
	}
	if statsT.SkippedBlocks != statsU.SkippedBlocks {
		t.Errorf("traced run skipped %d, untraced %d — paths disagree",
			statsT.SkippedBlocks, statsU.SkippedBlocks)
	}
	if got := eU.SkippedBlocks.Load(); got != statsU.SkippedBlocks {
		t.Errorf("engine counter %d != run stats %d", got, statsU.SkippedBlocks)
	}
	var traceSum, rowUpper int64
	for _, it := range statsT.Trace {
		traceSum += it.SkippedBlocks
		rowUpper += int64(it.TotalBlockRows - it.ActiveBlockRows)
	}
	if traceSum != statsT.SkippedBlocks {
		t.Errorf("trace sums to %d, stats say %d", traceSum, statsT.SkippedBlocks)
	}
	// Sub-block granularity: every skipped block-row here owns >= 2
	// sub-blocks, so the sub-block count must strictly exceed the
	// row count whenever anything was skipped.
	if traceSum <= rowUpper {
		t.Errorf("skipped %d sub-blocks over %d skipped block-rows — count is row-granular", traceSum, rowUpper)
	}
}

// TestSparseMainPhaseZeroAlloc extends the zero-allocation guarantee to
// the sparse path: with the threshold forced high the warm iteration mix
// includes planIteration, the sparse Scatter walk and worklist rebuilds,
// and must still allocate nothing.
func TestSparseMainPhaseZeroAlloc(t *testing.T) {
	g := frontierGraph(t, 3000, 24000, 1.3, 11)
	e, err := New(g, Config{Threads: 1, SparseDensity: 0.99})
	if err != nil {
		t.Fatal(err)
	}
	ws, err := e.NewWorkspace(1)
	if err != nil {
		t.Fatal(err)
	}
	// Warm run: leaves the workspace mid-convergence state (non-empty
	// worklists, sparse modes engaged) for the measured iterations.
	if _, _, err := e.RunInWorkspace(algo.NewPageRank(g, 0.85, 0, 10), ws); err != nil {
		t.Fatal(err)
	}
	if ws.rc.first {
		t.Fatal("warm run left first-iteration flag set")
	}
	allocs := testing.AllocsPerRun(50, func() {
		ws.rc.iterateMain()
	})
	if allocs != 0 {
		t.Errorf("sparse main-phase iteration allocates %v objects, want 0", allocs)
	}
	if ws.rc.sparseRows == 0 {
		t.Error("forced threshold did not engage the sparse path")
	}
}

// TestConcurrentSparseDenseWorkspaces is the -race test of concurrent
// RunInWorkspace calls whose iterations mix sparse, dense and skipped
// rows on one shared engine: tolerance PageRank (frontier decays into
// sparse), BFS (wavefront), and fixed-iteration InDegree (all dense).
// Every concurrent result must equal its serial counterpart.
func TestConcurrentSparseDenseWorkspaces(t *testing.T) {
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)

	g := frontierGraph(t, 2500, 20000, 1.3, 21)
	e, err := New(g, Config{Threads: 2, SparseDensity: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	progs := []func() vprog.Program{
		func() vprog.Program { return algo.NewPageRank(g, 0.85, 1e-7, 100) },
		func() vprog.Program { return algo.NewBFS(g, 1) },
		func() vprog.Program { return algo.NewInDegree(6) },
	}
	serial := make([][]float64, len(progs))
	for i, np := range progs {
		res, err := e.Run(np())
		if err != nil {
			t.Fatal(err)
		}
		serial[i] = res.Values
	}

	const rounds = 3
	var wg sync.WaitGroup
	errCh := make(chan error, len(progs)*rounds)
	for i, np := range progs {
		for rd := 0; rd < rounds; rd++ {
			wg.Add(1)
			go func(i, rd int, np func() vprog.Program) {
				defer wg.Done()
				ws, err := e.NewWorkspace(1)
				if err != nil {
					errCh <- err
					return
				}
				res, _, err := e.RunInWorkspace(np(), ws)
				if err != nil {
					errCh <- err
					return
				}
				if !sameValues(res.Values, serial[i]) {
					errCh <- fmt.Errorf("prog %d round %d: concurrent result differs from serial", i, rd)
				}
			}(i, rd, np)
		}
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
}

package core

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"mixen/internal/algo"
	"mixen/internal/gen"
	"mixen/internal/graph"
	"mixen/internal/vprog"
)

func shardedTestGraph(t testing.TB) *graph.Graph {
	t.Helper()
	g, err := gen.Skewed(gen.SkewedConfig{
		N: 2000, M: 16000,
		RegularFrac: 0.4, SeedFrac: 0.3, SinkFrac: 0.2,
		ZipfS: 1.3, ZipfV: 1, Seed: 17,
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestShardedMatchesSingleAllAlgorithms is the sharded bit-identity sweep
// of the tentpole requirement: every algorithm family × widths 1/4/8 ×
// dense/sparse × S ∈ {1,2,4} must produce values, iteration counts and
// final deltas identical bit for bit to the single-partition engine —
// the exchange drain uses the same fixed fold order as within-partition
// gather, so not even floating-point association may differ.
func TestShardedMatchesSingleAllAlgorithms(t *testing.T) {
	g := shardedTestGraph(t)
	type prog struct {
		name string
		mk   func() vprog.Program
	}
	progs := []prog{
		{"pagerank/w1", func() vprog.Program { return algo.NewPageRank(g, 0.85, 1e-8, 60) }},
		{"indegree/w1", func() vprog.Program { return algo.NewInDegree(5) }},
		{"bfs/w1", func() vprog.Program { return algo.NewBFS(g, 3) }},
		{"cc/w1", func() vprog.Program { return algo.NewCC(g) }},
		{"cf/w4", func() vprog.Program { return algo.NewCF(g, 4, 6) }},
		{"cf/w8", func() vprog.Program { return algo.NewCF(g, 8, 6) }},
	}
	for _, sparse := range []bool{false, true} {
		base := Config{Side: 128, Threads: 2, DisableSparse: !sparse}
		if sparse {
			// Aggressive threshold so sparse mode actually engages on a
			// graph this small.
			base.SparseDensity = 0.5
		}
		single, err := New(g, base)
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range []int{1, 2, 4} {
			cfg := base
			cfg.Shards = s
			sharded, err := New(g, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if s > 1 {
				if sh := sharded.Sharding(); sh == nil || sh.S != s {
					t.Fatalf("shards=%d sparse=%v: engine not sharded as requested", s, sparse)
				}
			}
			for _, p := range progs {
				name := fmt.Sprintf("%s/shards=%d/sparse=%v", p.name, s, sparse)
				want, err := single.Run(p.mk())
				if err != nil {
					t.Fatalf("%s single: %v", name, err)
				}
				got, err := sharded.Run(p.mk())
				if err != nil {
					t.Fatalf("%s sharded: %v", name, err)
				}
				if got.Iterations != want.Iterations || got.Delta != want.Delta {
					t.Errorf("%s: convergence differs: sharded (%d, %g) single (%d, %g)",
						name, got.Iterations, got.Delta, want.Iterations, want.Delta)
				}
				if !sameValues(got.Values, want.Values) {
					t.Errorf("%s: sharded values differ from single-partition", name)
				}
			}
		}
	}
}

// TestShardedBatcherConcurrentSubmits is the -race test of the sharded
// batcher path: concurrent Submit callers over a sharded engine, every
// future resolving to the query's single-partition standalone result.
func TestShardedBatcherConcurrentSubmits(t *testing.T) {
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)

	g := shardedTestGraph(t)
	single, err := New(g, Config{Side: 128})
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewSharded(g, Config{Side: 128, Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	const nq = 24
	want := make([][]float64, nq)
	for i := range want {
		res, err := single.Run(algo.NewPersonalizedPageRank(g, uint32(i*7%g.NumNodes()), 0.85, 0, 8))
		if err != nil {
			t.Fatal(err)
		}
		want[i] = res.Values
	}
	b := NewBatcher(e.Engine, BatcherConfig{MaxBatch: 8, MaxWait: time.Millisecond})
	defer b.Close()
	var wg sync.WaitGroup
	errs := make([]error, nq)
	for i := 0; i < nq; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			fut, err := b.Submit(algo.NewPersonalizedPageRank(g, uint32(i*7%g.NumNodes()), 0.85, 0, 8))
			if err != nil {
				errs[i] = err
				return
			}
			res, err := fut.Wait()
			if err != nil {
				errs[i] = err
				return
			}
			if !sameValues(res.Values, want[i]) {
				errs[i] = fmt.Errorf("query %d: batched sharded result differs from standalone single-partition run", i)
			}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Error(err)
		}
	}
}

// TestShardedCancelMidExchange cancels a traced sharded run mid-flight —
// the traced path is the one that splits Scatter into the local pass and
// the exchange, so the stop flag tears the run around the exchange
// barrier — then reuses the same workspace for a clean run and requires
// the single-partition answer.
func TestShardedCancelMidExchange(t *testing.T) {
	g := shardedTestGraph(t)
	single, err := New(g, Config{Side: 128})
	if err != nil {
		t.Fatal(err)
	}
	want, err := single.Run(algo.NewPageRank(g, 0.85, 0, 20))
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewSharded(g, Config{Side: 128, Shards: 4, Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	ws, err := e.NewWorkspace(1)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 3; trial++ {
		ctx, cancel := context.WithCancel(context.Background())
		prog := &cancelAt{Program: algo.NewPageRank(g, 0.85, 0, 10_000), iter: 2, cancel: cancel}
		if _, _, err := e.RunInWorkspaceCtx(ctx, prog, ws); !errors.Is(err, context.Canceled) {
			t.Fatalf("trial %d: err = %v, want context.Canceled", trial, err)
		}
		cancel()
		res, _, err := e.RunInWorkspaceCtx(context.Background(), algo.NewPageRank(g, 0.85, 0, 20), ws)
		if err != nil {
			t.Fatalf("trial %d: rerun in cancelled workspace: %v", trial, err)
		}
		if !sameValues(res.Values, want.Values) {
			t.Fatalf("trial %d: sharded rerun after cancel differs from single-partition run", trial)
		}
	}
}

// TestShardedExchangeObservability checks the exchange accounting of a
// traced sharded run: the first (all-dense) iteration's exchange covers
// every outbox entry, totals reconcile with RunStats, and the effective
// config advertises the shard count.
func TestShardedExchangeObservability(t *testing.T) {
	g := shardedTestGraph(t)
	e, err := NewSharded(g, Config{Side: 128, Shards: 3, Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	sh := e.Sharding()
	if sh == nil {
		t.Fatal("sharded engine has no sharding")
	}
	_, stats, err := e.RunWithStats(algo.NewPageRank(g, 0.85, 1e-8, 40))
	if err != nil {
		t.Fatal(err)
	}
	if stats.ExchangeEntries <= 0 {
		t.Fatalf("ExchangeEntries = %d, want > 0 (cut entries: %d)", stats.ExchangeEntries, sh.CutEntries)
	}
	if stats.ExchangeEntries > stats.ScatterEntries {
		t.Fatalf("ExchangeEntries %d exceeds ScatterEntries %d", stats.ExchangeEntries, stats.ScatterEntries)
	}
	if len(stats.Trace) == 0 {
		t.Fatal("traced run recorded no iteration trace")
	}
	var sum int64
	for i, it := range stats.Trace {
		if it.ExchangeNs < 0 {
			t.Fatalf("iteration %d: negative ExchangeNs", i)
		}
		if it.ExchangeEntries > it.ScatterEntries {
			t.Fatalf("iteration %d: exchange entries %d exceed scatter entries %d",
				i, it.ExchangeEntries, it.ScatterEntries)
		}
		sum += it.ExchangeEntries
	}
	if stats.Trace[0].ExchangeEntries != sh.CutEntries {
		t.Fatalf("first iteration exchanged %d entries, want all %d outbox entries",
			stats.Trace[0].ExchangeEntries, sh.CutEntries)
	}
	if sum != stats.ExchangeEntries {
		t.Fatalf("per-iteration exchange sum %d != RunStats.ExchangeEntries %d", sum, stats.ExchangeEntries)
	}
	if got := e.EffectiveConfig()["shards"]; got != "3" {
		t.Fatalf("EffectiveConfig shards = %q, want \"3\"", got)
	}
	if e.Name() != "mixen-sharded" {
		t.Fatalf("Name() = %q", e.Name())
	}
}

// TestShardedPerShardStats sanity-checks the balance report ShardStats
// feeds cmd/mixenstats -shards.
func TestShardedPerShardStats(t *testing.T) {
	g := shardedTestGraph(t)
	e, err := NewSharded(g, Config{Side: 128, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	sh := e.Sharding()
	stats := ShardStats(sh, e.F.NumHub)
	if len(stats) != sh.S {
		t.Fatalf("%d shard stats for %d shards", len(stats), sh.S)
	}
	var nodes, hubs int
	var local, out, in int64
	for _, s := range stats {
		nodes += s.Nodes
		hubs += s.Hubs
		local += s.LocalEdges
		out += s.OutEdges
		in += s.InEdges
	}
	if nodes != sh.R {
		t.Fatalf("shard nodes sum %d != %d", nodes, sh.R)
	}
	if hubs != e.F.NumHub {
		t.Fatalf("shard hubs sum %d != %d", hubs, e.F.NumHub)
	}
	if out != sh.CutEdges || in != sh.CutEdges {
		t.Fatalf("out %d / in %d edge sums != cut edges %d", out, in, sh.CutEdges)
	}
	if local+out != sh.Nnz {
		t.Fatalf("local %d + cut %d != nnz %d", local, out, sh.Nnz)
	}
}

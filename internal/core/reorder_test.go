package core

import (
	"fmt"
	"math"
	"testing"

	"mixen/internal/algo"
	"mixen/internal/graph"
	"mixen/internal/reorder"
	"mixen/internal/vprog"
)

// exactProgs builds the order-exact program matrix of the reorder identity
// sweep: integer Sum folds (in-degree) and Min folds (BFS, CC) are
// permutation-invariant bit for bit — reassociating the gather cannot
// change an integer sum or a minimum — at widths 1 and 4 (width 4 via
// vprog.Batch, the fused-serving path).
func exactProgs(t *testing.T, g *graph.Graph) []struct {
	name string
	mk   func() vprog.Program
} {
	t.Helper()
	n := g.NumNodes()
	return []struct {
		name string
		mk   func() vprog.Program
	}{
		{"indegree/w1", func() vprog.Program { return algo.NewInDegree(5) }},
		{"bfs/w1", func() vprog.Program { return algo.NewBFS(g, 3) }},
		{"cc/w1", func() vprog.Program { return algo.NewCC(g) }},
		{"indegree/w4", func() vprog.Program {
			b, err := vprog.NewBatch(n,
				algo.NewInDegree(5), algo.NewInDegree(5),
				algo.NewInDegree(5), algo.NewInDegree(5))
			if err != nil {
				t.Fatal(err)
			}
			return b
		}},
		{"bfs/w4", func() vprog.Program {
			b, err := vprog.NewBatch(n,
				algo.NewBFS(g, 0), algo.NewBFS(g, 3),
				algo.NewBFS(g, 7), algo.NewBFS(g, 11))
			if err != nil {
				t.Fatal(err)
			}
			return b
		}},
	}
}

// TestReorderMatchesUnreorderedAllStrategies is the reorder bit-identity
// sweep of the tentpole requirement: every degree-keyed strategy × dense /
// sparse Scatter × widths 1 and 4 must produce values (demuxed back to
// original ids by the engine's translate step), iteration counts and final
// deltas identical bit for bit to the unreordered engine — the permutation
// only relocates rows inside the regular range, it must not change what
// any node computes.
func TestReorderMatchesUnreorderedAllStrategies(t *testing.T) {
	g := shardedTestGraph(t)
	progs := exactProgs(t, g)
	for _, sparse := range []bool{false, true} {
		base := Config{Side: 128, Threads: 2, DisableSparse: !sparse}
		if sparse {
			base.SparseDensity = 0.5
		}
		baseline, err := New(g, base)
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range reorder.DegreeStrategies() {
			if s == reorder.Original {
				continue
			}
			cfg := base
			cfg.Reorder = s
			cfg.ReorderSeed = 9
			e, err := New(g, cfg)
			if err != nil {
				t.Fatalf("%s: %v", s, err)
			}
			if e.Prep.ReorderTime <= 0 {
				t.Errorf("%s: ReorderTime not recorded", s)
			}
			if got := e.EffectiveConfig()["reorder"]; got != string(s) {
				t.Errorf("%s: EffectiveConfig reorder = %q", s, got)
			}
			for _, p := range progs {
				name := fmt.Sprintf("%s/%s/sparse=%v", p.name, s, sparse)
				want, err := baseline.Run(p.mk())
				if err != nil {
					t.Fatalf("%s baseline: %v", name, err)
				}
				got, err := e.Run(p.mk())
				if err != nil {
					t.Fatalf("%s reordered: %v", name, err)
				}
				if got.Iterations != want.Iterations || got.Delta != want.Delta {
					t.Errorf("%s: convergence differs: reordered (%d, %g) baseline (%d, %g)",
						name, got.Iterations, got.Delta, want.Iterations, want.Delta)
				}
				if !sameValues(got.Values, want.Values) {
					t.Errorf("%s: reordered values differ from baseline", name)
				}
			}
		}
	}
}

// PageRank's Sum fold over arbitrary floats IS order-sensitive, so under a
// permutation the values may differ in the last ulps — but no further. The
// tolerance check pins that the reordering changes association only, not
// the computation.
func TestReorderPageRankWithinTolerance(t *testing.T) {
	g := shardedTestGraph(t)
	baseline, err := New(g, Config{Side: 128, Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	want, err := baseline.Run(algo.NewPageRank(g, 0.85, 0, 30))
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range reorder.DegreeStrategies() {
		e, err := New(g, Config{Side: 128, Threads: 2, Reorder: s, ReorderSeed: 1})
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		got, err := e.Run(algo.NewPageRank(g, 0.85, 0, 30))
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		for i := range want.Values {
			if d := math.Abs(got.Values[i] - want.Values[i]); d > 1e-12 {
				t.Fatalf("%s: node %d pagerank drifted by %g", s, i, d)
			}
		}
	}
}

// Reordering must compose with sharding: the permutation runs before the
// sharded partition build, and the sharded engine's exchange keeps its
// bit-identity guarantee on top of it.
func TestReorderComposesWithShards(t *testing.T) {
	g := shardedTestGraph(t)
	baseline, err := New(g, Config{Side: 128, Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	want, err := baseline.Run(algo.NewInDegree(5))
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(g, Config{Side: 128, Threads: 2, Shards: 3, Reorder: reorder.HubSort})
	if err != nil {
		t.Fatal(err)
	}
	got, err := e.Run(algo.NewInDegree(5))
	if err != nil {
		t.Fatal(err)
	}
	if !sameValues(got.Values, want.Values) {
		t.Fatal("hubsort + shards=3 values differ from plain engine")
	}
}

// RCM needs adjacency and must be rejected at construction, not silently
// ignored.
func TestReorderRejectsRCM(t *testing.T) {
	g := shardedTestGraph(t)
	if _, err := New(g, Config{Reorder: reorder.RCM}); err == nil {
		t.Fatal("expected RCM rejection")
	}
	if _, err := New(g, Config{Reorder: reorder.Strategy("bogus")}); err == nil {
		t.Fatal("expected unknown-strategy rejection")
	}
}

func TestAutoTuneSelectsCandidateSide(t *testing.T) {
	g := shardedTestGraph(t)
	e, err := New(g, Config{Threads: 2, AutoTune: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(e.Tuned) == 0 {
		t.Fatal("AutoTune ran but Tuned table is empty")
	}
	chosen := 0
	for _, tr := range e.Tuned {
		if tr.Side <= 0 || tr.Blocks <= 0 || tr.ProbeTime <= 0 {
			t.Fatalf("malformed trial %+v", tr)
		}
		if tr.Chosen {
			chosen++
			if tr.Side != e.P.Side {
				t.Fatalf("chosen trial side %d != partition side %d", tr.Side, e.P.Side)
			}
		}
	}
	if chosen != 1 {
		t.Fatalf("%d trials marked chosen, want exactly 1", chosen)
	}
	if e.Prep.TuneTime <= 0 {
		t.Fatal("TuneTime not recorded")
	}
	if got := e.EffectiveConfig()["autotune"]; got != "measured" {
		t.Fatalf("EffectiveConfig autotune = %q, want measured", got)
	}
	// The tuned side must flow into per-run stats.
	_, stats, err := e.RunWithStats(algo.NewInDegree(3))
	if err != nil {
		t.Fatal(err)
	}
	if stats.TunedSide != e.P.Side {
		t.Fatalf("RunStats.TunedSide = %d, want %d", stats.TunedSide, e.P.Side)
	}
	// And tuned results are still correct.
	want, err := New(g, Config{Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	wres, err := want.Run(algo.NewInDegree(3))
	if err != nil {
		t.Fatal(err)
	}
	gres, err := e.Run(algo.NewInDegree(3))
	if err != nil {
		t.Fatal(err)
	}
	if !sameValues(gres.Values, wres.Values) {
		t.Fatal("auto-tuned engine values differ from default engine")
	}
}

// An explicit Side always wins over AutoTune: the tuner must not run.
func TestAutoTuneExplicitSideWins(t *testing.T) {
	g := shardedTestGraph(t)
	e, err := New(g, Config{Side: 128, Threads: 2, AutoTune: true})
	if err != nil {
		t.Fatal(err)
	}
	if e.Tuned != nil {
		t.Fatal("tuner ran despite explicit Side")
	}
	if e.P.Side != 128 {
		t.Fatalf("explicit side overridden: %d", e.P.Side)
	}
	if got := e.EffectiveConfig()["autotune"]; got != "off-explicit-side" {
		t.Fatalf("EffectiveConfig autotune = %q, want off-explicit-side", got)
	}
	_, stats, err := e.RunWithStats(algo.NewInDegree(3))
	if err != nil {
		t.Fatal(err)
	}
	if stats.TunedSide != 0 {
		t.Fatalf("RunStats.TunedSide = %d, want 0", stats.TunedSide)
	}
}

// AutoTune composes with Shards: the tuner picks the side, the sharding
// rebuilds at that side, results stay identical to the plain engine.
func TestAutoTuneComposesWithShards(t *testing.T) {
	g := shardedTestGraph(t)
	e, err := New(g, Config{Threads: 2, AutoTune: true, Shards: 2, Reorder: reorder.DBG})
	if err != nil {
		t.Fatal(err)
	}
	if len(e.Tuned) == 0 {
		t.Fatal("tuner did not run under shards")
	}
	if e.P.Side != e.TunedSide() {
		t.Fatalf("sharded partition side %d != tuned side %d", e.P.Side, e.TunedSide())
	}
	baseline, err := New(g, Config{Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	want, err := baseline.Run(algo.NewInDegree(4))
	if err != nil {
		t.Fatal(err)
	}
	got, err := e.Run(algo.NewInDegree(4))
	if err != nil {
		t.Fatal(err)
	}
	if !sameValues(got.Values, want.Values) {
		t.Fatal("autotune+shards+dbg values differ from plain engine")
	}
}

func TestTuneCandidateSides(t *testing.T) {
	sides := tuneCandidateSides(100_000, 4)
	if len(sides) < 4 {
		t.Fatalf("expected a real ladder for r=100k, got %v", sides)
	}
	for i := 1; i < len(sides); i++ {
		if sides[i] <= sides[i-1] {
			t.Fatalf("candidate ladder not strictly ascending: %v", sides)
		}
	}
	// Tiny regular range: the ladder collapses to at most one side >= r.
	small := tuneCandidateSides(100, 4)
	over := 0
	for _, s := range small {
		if s >= 100 {
			over++
		}
	}
	if over > 1 {
		t.Fatalf("more than one degenerate side for r=100: %v", small)
	}
}

package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"mixen/internal/algo"
	"mixen/internal/obs"
	"mixen/internal/vprog"
)

// cancelAt wraps a program and fires cancel from the Converged hook at a
// chosen iteration — a deterministic way to cancel a run that is
// mid-flight, from inside the coordinator itself. Converged always
// answers false, so only cancellation can stop the run before MaxIter.
type cancelAt struct {
	vprog.Program
	iter   int
	cancel context.CancelFunc
}

func (c *cancelAt) Converged(delta float64, iter int) bool {
	if iter == c.iter {
		c.cancel()
	}
	return false
}

func (c *cancelAt) MaxIter() int { return 10_000 }

// TestRunCtxPreCancelled: an already-done context never starts the run and
// the error surfaces as context.Canceled with the cancelled-run counter
// booked.
func TestRunCtxPreCancelled(t *testing.T) {
	g := tiny(t)
	reg := obs.NewRegistry()
	e, err := New(g, Config{Collector: reg})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := e.RunCtx(ctx, algo.NewPageRank(g, 0.85, 0, 10))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res != nil {
		t.Fatal("cancelled run returned a result")
	}
	if got := reg.Counter("core.cancelled_runs").Value(); got != 1 {
		t.Fatalf("core.cancelled_runs = %d, want 1", got)
	}
}

// TestRunCtxMidRunCancel cancels from the Converged hook a few iterations
// in: the run must stop early (well short of MaxIter), return
// context.Canceled, and report the partial iteration count in RunStats.
func TestRunCtxMidRunCancel(t *testing.T) {
	g := skewedForConcurrency(t)
	reg := obs.NewRegistry()
	e, err := New(g, Config{Collector: reg})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	prog := &cancelAt{Program: algo.NewPageRank(g, 0.85, 0, 10_000), iter: 3, cancel: cancel}
	res, stats, err := e.RunWithStatsCtx(ctx, prog)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res != nil {
		t.Fatal("cancelled run returned a result")
	}
	// cancel closes the done channel synchronously from inside the
	// Converged hook, and the coordinator polls it at the next iteration
	// boundary — so the run stops after exactly the cancelling iteration.
	if stats.MainIterations != 3 {
		t.Fatalf("run stopped after %d iterations, want exactly 3 (cancel fired at iteration 3)", stats.MainIterations)
	}
	if got := reg.Counter("core.cancelled_runs").Value(); got != 1 {
		t.Fatalf("core.cancelled_runs = %d, want 1", got)
	}
}

// TestRunCtxDeadline: a deadline that expires mid-run surfaces as
// context.DeadlineExceeded and books core.deadline_runs (not
// cancelled_runs).
func TestRunCtxDeadline(t *testing.T) {
	g := skewedForConcurrency(t)
	reg := obs.NewRegistry()
	e, err := New(g, Config{Collector: reg})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	// No tolerance and a huge budget: only the deadline can stop it.
	_, err = e.RunCtx(ctx, algo.NewPageRank(g, 0.85, 0, 10_000_000))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if got := reg.Counter("core.deadline_runs").Value(); got != 1 {
		t.Fatalf("core.deadline_runs = %d, want 1", got)
	}
	if got := reg.Counter("core.cancelled_runs").Value(); got != 0 {
		t.Fatalf("core.cancelled_runs = %d, want 0 for a deadline expiry", got)
	}
}

// TestWorkspaceReusableAfterCancel is the no-leak contract: a workspace
// whose run was abandoned mid-iteration (torn phase state, partial swaps,
// dirty frontier masks) must serve the next run unchanged — bit-identical
// to the same program on a fresh engine.
func TestWorkspaceReusableAfterCancel(t *testing.T) {
	g := skewedForConcurrency(t)
	e, err := New(g, Config{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := e.Run(algo.NewPageRank(g, 0.85, 0, 20))
	if err != nil {
		t.Fatal(err)
	}

	ws, err := e.NewWorkspace(1)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 3; trial++ {
		ctx, cancel := context.WithCancel(context.Background())
		prog := &cancelAt{Program: algo.NewPageRank(g, 0.85, 0, 10_000), iter: 2, cancel: cancel}
		if _, _, err := e.RunInWorkspaceCtx(ctx, prog, ws); !errors.Is(err, context.Canceled) {
			t.Fatalf("trial %d: err = %v, want context.Canceled", trial, err)
		}
		cancel()
		res, _, err := e.RunInWorkspaceCtx(context.Background(), algo.NewPageRank(g, 0.85, 0, 20), ws)
		if err != nil {
			t.Fatalf("trial %d: rerun in cancelled workspace: %v", trial, err)
		}
		if !sameValues(res.Values, want.Values) {
			t.Fatalf("trial %d: rerun after cancel differs from fresh run", trial)
		}
	}
}

// TestPooledWorkspaceReusableAfterCancel exercises the RunCtx pool path:
// a cancelled pooled run must return its workspace to the pool in a
// reusable state, so the next RunCtx (which grabs the same pooled
// workspace on a single-threaded pool) still matches a clean run.
func TestPooledWorkspaceReusableAfterCancel(t *testing.T) {
	g := skewedForConcurrency(t)
	e, err := New(g, Config{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := e.Run(algo.NewPageRank(g, 0.85, 0, 20))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	prog := &cancelAt{Program: algo.NewPageRank(g, 0.85, 0, 10_000), iter: 2, cancel: cancel}
	if _, err := e.RunCtx(ctx, prog); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	cancel()
	res, err := e.RunCtx(context.Background(), algo.NewPageRank(g, 0.85, 0, 20))
	if err != nil {
		t.Fatal(err)
	}
	if !sameValues(res.Values, want.Values) {
		t.Fatal("pooled rerun after cancelled run differs from fresh run")
	}
}

// TestCancellableIterationAllocatesNothing extends the zero-alloc
// steady-state assertion to the cancellable path: with the stop flag armed
// (stopPtr non-nil, as under any cancellable ctx), a main-phase iteration
// still performs zero heap allocations — cancellation costs one atomic
// load per chunk, not an allocation.
func TestCancellableIterationAllocatesNothing(t *testing.T) {
	g := skewedForConcurrency(t)
	e, err := New(g, Config{Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	ws, err := e.NewWorkspace(1)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := e.RunInWorkspace(algo.NewPageRank(g, 0.85, 0, 10), ws); err != nil {
		t.Fatal(err)
	}
	ws.rc.stop.Store(false)
	ws.rc.stopPtr = &ws.rc.stop
	defer func() { ws.rc.stopPtr = nil }()
	allocs := testing.AllocsPerRun(50, func() {
		ws.rc.iterateMain()
	})
	if allocs != 0 {
		t.Fatalf("cancellable main-phase iteration allocated %.1f times per run, want 0", allocs)
	}
}

// TestSubmitCtxExpiredRejected: a Submit whose context is already done is
// rejected synchronously — it never enters a queue, never delays a batch,
// and books batch.rejected_expired.
func TestSubmitCtxExpiredRejected(t *testing.T) {
	g := skewedForConcurrency(t)
	reg := obs.NewRegistry()
	e, err := New(g, Config{Collector: reg})
	if err != nil {
		t.Fatal(err)
	}
	b := NewBatcher(e, BatcherConfig{MaxBatch: 16, MaxWait: time.Millisecond})
	defer b.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := b.SubmitCtx(ctx, algo.NewPersonalizedPageRank(g, 1, 0.85, 0, 10)); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got := reg.Counter("batch.rejected_expired").Value(); got != 1 {
		t.Fatalf("batch.rejected_expired = %d, want 1", got)
	}
}

// TestWaitCtxAbandonDoesNotBlockBatch: one caller abandoning its future
// (WaitCtx deadline) must not cancel or corrupt companions fused into the
// same run — the other query still gets its exact standalone result.
func TestWaitCtxAbandonDoesNotBlockBatch(t *testing.T) {
	g := skewedForConcurrency(t)
	e, err := New(g, Config{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := e.Run(algo.NewPersonalizedPageRank(g, 7, 0.85, 0, 20))
	if err != nil {
		t.Fatal(err)
	}
	b := NewBatcher(e, BatcherConfig{MaxBatch: 2, MaxWait: 50 * time.Millisecond})
	defer b.Close()

	expired, cancelExpired := context.WithCancel(context.Background())
	futA, err := b.SubmitCtx(expired, algo.NewPersonalizedPageRank(g, 3, 0.85, 0, 20))
	if err != nil {
		t.Fatal(err)
	}
	futB, err := b.SubmitCtx(context.Background(), algo.NewPersonalizedPageRank(g, 7, 0.85, 0, 20))
	if err != nil {
		t.Fatal(err)
	}
	cancelExpired() // abandon A after both are queued (MaxBatch=2 fused them)
	if _, err := futA.WaitCtx(expired); !errors.Is(err, context.Canceled) {
		t.Fatalf("abandoned wait: err = %v, want context.Canceled", err)
	}
	res, err := futB.WaitCtx(context.Background())
	if err != nil {
		t.Fatalf("companion query failed: %v", err)
	}
	if !sameValues(res.Values, want.Values) {
		t.Fatal("companion result differs from standalone run after batch-mate abandoned")
	}
}

// TestBatchRunCancelsWhenAllMembersCancel: when EVERY member of a fused
// run has a done context, the run itself is cancelled cooperatively and
// every future resolves with the cancellation error.
func TestBatchRunCancelsWhenAllMembersCancel(t *testing.T) {
	g := skewedForConcurrency(t)
	reg := obs.NewRegistry()
	e, err := New(g, Config{Collector: reg})
	if err != nil {
		t.Fatal(err)
	}
	b := NewBatcher(e, BatcherConfig{MaxBatch: 2, MaxWait: time.Hour})
	defer b.Close()

	ctxA, cancelA := context.WithCancel(context.Background())
	ctxB, cancelB := context.WithCancel(context.Background())
	// Huge budgets, no tolerance: only cancellation can finish these.
	futA, err := b.SubmitCtx(ctxA, algo.NewPersonalizedPageRank(g, 3, 0.85, 0, 10_000_000))
	if err != nil {
		t.Fatal(err)
	}
	futB, err := b.SubmitCtx(ctxB, algo.NewPersonalizedPageRank(g, 7, 0.85, 0, 10_000_000))
	if err != nil {
		t.Fatal(err)
	}
	cancelA()
	cancelB()
	if _, err := futA.Wait(); err == nil {
		t.Fatal("fully-cancelled batch resolved future A without error")
	}
	if _, err := futB.Wait(); err == nil {
		t.Fatal("fully-cancelled batch resolved future B without error")
	}
	if got := reg.Counter("batch.cancelled_runs").Value(); got != 1 {
		t.Fatalf("batch.cancelled_runs = %d, want 1", got)
	}
}

package core

import (
	"fmt"

	"mixen/internal/block"
	"mixen/internal/filter"
	"mixen/internal/reorder"
)

// NewFromPrebuilt wraps an already-built filtered form and partition — in
// practice one loaded from a .mixp file by internal/partio — in an Engine
// without running any preprocessing: no filter pass, no reordering, no
// tuning, no partitioning. The SCGA run path only ever reads f and p (the
// PR2 immutability contract), so an engine over a read-only mapping serves
// queries exactly like one built from edges.
//
// Build-time decisions travel with the partition, so cfg must not ask for
// them again: a non-zero Side that disagrees with p, a Reorder strategy,
// AutoTune, or Shards > 1 are errors — re-run mixenconvert to bake a
// different layout. Run-time knobs (Threads, SparseDensity, Trace,
// Collector, the Disable* execution toggles) apply normally.
func NewFromPrebuilt(f *filter.Filtered, p *block.Partition, cfg Config) (*Engine, error) {
	if f == nil || p == nil {
		return nil, fmt.Errorf("core: prebuilt: nil filtered form or partition")
	}
	if f.NumRegular != p.R {
		return nil, fmt.Errorf("core: prebuilt: partition is %d×%d but filtered form has %d regular nodes", p.R, p.R, f.NumRegular)
	}
	if cfg.Side != 0 && cfg.Side != p.Side {
		return nil, fmt.Errorf("core: prebuilt: requested side %d but the partition was built with side %d (rebuild the file to change it)", cfg.Side, p.Side)
	}
	if cfg.Reorder != "" && cfg.Reorder != reorder.Original {
		return nil, fmt.Errorf("core: prebuilt: reordering is a build-time decision; rebuild the file with -reorder %s", cfg.Reorder)
	}
	if cfg.AutoTune {
		return nil, fmt.Errorf("core: prebuilt: auto-tuning is a build-time decision; rebuild the file with -autotune")
	}
	if cfg.Shards > 1 {
		return nil, fmt.Errorf("core: prebuilt: sharding needs the regular CSR, which prebuilt partitions do not carry")
	}
	cfg = cfg.withDefaults()
	cfg.Side = p.Side
	e := &Engine{
		cfg:      cfg,
		F:        f,
		P:        p,
		prebuilt: true,
	}
	e.SetCollector(cfg.Collector)
	return e, nil
}

// Layout reports the engine's baked layout decision — the reorder strategy
// applied to the regular range ("" when none) and whether the block side
// came from the measured auto-tuner. This pair, plus Partition.Side, is
// what a .mixp file persists so restarts skip the probe.
func (e *Engine) Layout() (reorderStrategy string, autoTuned bool) {
	if e.cfg.Reorder != "" && e.cfg.Reorder != reorder.Original {
		reorderStrategy = string(e.cfg.Reorder)
	}
	return reorderStrategy, len(e.Tuned) > 0
}

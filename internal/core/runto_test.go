package core

import (
	"context"
	"testing"

	"mixen/internal/algo"
	"mixen/internal/gen"
)

// TestRunToCtx pins the caller-out-buffer run path: results are
// bit-identical to the pooled Run path, Values aliases the caller's
// slice, the slice survives subsequent runs on the same workspace, and
// mismatched buffers or foreign workspaces are refused.
func TestRunToCtx(t *testing.T) {
	g, err := gen.Skewed(gen.SkewedConfig{
		N: 900, M: 7000,
		RegularFrac: 0.4, SeedFrac: 0.2, SinkFrac: 0.25,
		ZipfS: 1.2, ZipfV: 1, Seed: 17,
	})
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(g, Config{})
	if err != nil {
		t.Fatal(err)
	}
	n := g.NumNodes()
	deg := algo.OutDegrees(g)
	prog := func(src uint32) *algo.PersonalizedPageRank {
		return algo.NewPersonalizedPageRankShared(n, deg, src, 0.85, 1e-8, 100)
	}

	want, err := e.Run(prog(3))
	if err != nil {
		t.Fatal(err)
	}

	ws, err := e.NewWorkspace(1)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]float64, n)
	res, _, err := e.RunToCtx(context.Background(), prog(3), ws, out)
	if err != nil {
		t.Fatal(err)
	}
	if &res.Values[0] != &out[0] {
		t.Fatal("Result.Values does not alias the caller's out slice")
	}
	for i := range want.Values {
		if out[i] != want.Values[i] {
			t.Fatalf("node %d: RunToCtx %g != Run %g", i, out[i], want.Values[i])
		}
	}

	// A second run on the same workspace must not disturb the first out.
	keep := make([]float64, n)
	copy(keep, out)
	out2 := make([]float64, n)
	if _, _, err := e.RunToCtx(context.Background(), prog(7), ws, out2); err != nil {
		t.Fatal(err)
	}
	for i := range keep {
		if out[i] != keep[i] {
			t.Fatalf("node %d: first out buffer changed after workspace reuse", i)
		}
	}

	// Validation: wrong out length, foreign workspace, width mismatch.
	if _, _, err := e.RunToCtx(context.Background(), prog(3), ws, make([]float64, n-1)); err == nil {
		t.Error("short out slice accepted")
	}
	e2, err := New(g, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := e2.RunToCtx(context.Background(), prog(3), ws, out); err == nil {
		t.Error("foreign workspace accepted")
	}
}

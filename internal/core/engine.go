// Package core implements the Mixen engine — the paper's primary
// contribution. It composes the filtering stage (internal/filter), the 2-D
// blocked partition (internal/block), and the Scatter-Cache-Gather-Apply
// (SCGA) execution model of Section 4.3:
//
//	Pre-Phase:  seed nodes push their (constant) contributions into the
//	            static bins, once.
//	Main-Phase: iterate over the regular×regular blocked submatrix:
//	            Scatter buffers compressed source values into the dynamic
//	            bins; Cache seeds each output segment with the static-bin
//	            contributions (replacing both the zero-initialisation and
//	            the repeated seed propagation); Gather drains the bins
//	            column-by-column; Apply runs the user function per node.
//	Post-Phase: sink nodes pull once from their (final) in-neighbour values.
package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"mixen/internal/block"
	"mixen/internal/filter"
	"mixen/internal/graph"
	"mixen/internal/obs"
	"mixen/internal/reorder"
	"mixen/internal/sched"
	"mixen/internal/vprog"
)

// Config tunes the engine.
type Config struct {
	// Side is the block side in nodes (the paper's cache indicator c);
	// 0 picks block.DefaultSide.
	Side int
	// Threads is the worker count; 0 uses all available cores.
	Threads int
	// Shards splits the regular submatrix into that many contiguous,
	// block-aligned shards, each owning its own block.Partition, with
	// cross-shard contributions routed through per-(source-shard,
	// dest-shard) outbox bins (propagation blocking). Results are
	// bit-identical to the single-partition engine; 0 or 1 keeps the
	// single partition. See NewSharded / block.NewSharding.
	Shards int
	// Reorder applies a skew-aware lightweight reordering to the regular
	// submatrix AFTER filtering (composing with — not replacing — the
	// paper's connectivity-aware relabeling): node classes and the phase
	// schedule are untouched, only the layout inside the regular range
	// changes, and results still demux to original ids bit-for-bit.
	// Degree-keyed strategies only (reorder.DegreeStrategies: original,
	// degree, random, hubsort, hubcluster, dbg); RCM needs adjacency and is
	// rejected. Empty means no reordering. When set, the hub-first layout
	// the filter produced is overridden by the strategy's own layout.
	Reorder reorder.Strategy
	// ReorderSeed seeds the random reordering strategy (ignored otherwise).
	ReorderSeed int64
	// AutoTune selects the block side by measurement instead of the
	// DefaultSide heuristic: the constructor builds candidate partitions,
	// times a few probe Main-Phase iterations on each, and keeps the
	// fastest (see Engine.Tuned for the trial table, EffectiveConfig and
	// RunStats.TunedSide for the outcome). An explicit non-zero Side wins
	// over AutoTune — the tuner only runs when Side is 0. Tuning cost is
	// preprocessing-only (PrepStats.TuneTime); the run hot path is
	// untouched.
	AutoTune bool
	// MaxLoadFactor caps sub-block size at this multiple of the mean
	// (paper: 2). 0 applies the default; negative disables splitting.
	MaxLoadFactor float64
	// DisableCache recomputes the seed contributions every iteration
	// instead of reusing the static bins (ablation of the Cache step).
	DisableCache bool
	// DisableCompression buffers one bin entry per edge instead of one per
	// (source, block) pair (ablation of edge compression).
	DisableCompression bool
	// DisableHubOrder keeps regular nodes in original relative order
	// without relocating hubs to the front (ablation of filtering step 2).
	DisableHubOrder bool
	// DegreeSortOrder fully sorts regular nodes by descending in-degree
	// instead of the two-group hub-first policy (the "degree sort"
	// reordering baseline). Overrides DisableHubOrder.
	DegreeSortOrder bool
	// DisableActiveTracking turns off node-granularity activity tracking
	// (the bit mask §5 sets aside, refined to per-node frontiers): with
	// tracking on, Gather records which nodes changed, Scatter skips any
	// block-row whose source segment produced no value change in the
	// previous iteration — the dynamic bins still hold those sources'
	// (unchanged) messages, so Gather stays exact — and Gather itself
	// skips block-columns none of whose input sources changed. Sparse
	// iterations such as BFS skip most of the matrix once the frontier has
	// passed. Disabling this also disables the sparse Scatter.
	DisableActiveTracking bool
	// DisableSparse forces every non-quiescent block-row through the dense
	// row stream, turning off the frontier-driven sparse Scatter (the
	// always-dense baseline the frontier experiment compares against).
	// Row-level skipping of fully quiescent rows (see
	// DisableActiveTracking) is unaffected.
	DisableSparse bool
	// SparseDensity is the frontier-density threshold of the dense/sparse
	// Scatter decision: a block-row whose changed sources cover less than
	// this fraction of the row's compressed bin entries switches to the
	// sparse frontier walk, and switches back to dense above 2× the
	// threshold (hysteresis). 0 picks DefaultSparseDensity; negative
	// disables sparse execution like DisableSparse.
	SparseDensity float64
	// Collector receives engine telemetry (phase spans, iteration counts,
	// skipped-block counters) from preprocessing and every run. Nil means
	// the zero-cost no-op collector.
	Collector obs.Collector
	// Trace records a per-iteration timeline (Scatter/Cache/Gather-Apply
	// spans, delta, active block-rows) into RunStats.Trace. Independent of
	// Collector so `-trace` works without a metrics registry.
	Trace bool
}

func (c Config) regularOrder() filter.RegularOrder {
	switch {
	case c.DegreeSortOrder:
		return filter.OrderDegreeDesc
	case c.DisableHubOrder:
		return filter.OrderOriginal
	default:
		return filter.OrderHubFirst
	}
}

func (c Config) withDefaults() Config {
	if c.Threads <= 0 {
		c.Threads = sched.DefaultThreads()
	}
	if c.MaxLoadFactor == 0 {
		c.MaxLoadFactor = 2
	}
	if c.MaxLoadFactor < 0 {
		c.MaxLoadFactor = 0
	}
	if c.SparseDensity == 0 {
		c.SparseDensity = DefaultSparseDensity
	}
	return c
}

// DefaultSparseDensity is the default Config.SparseDensity: a block-row
// goes sparse when its frontier covers less than 1/20 of the row's bin
// entries. Ligra-style thresholds trade redundant dense streaming against
// the sparse walk's indirection; the entry-index walk touches ~3× the
// bytes per entry of the dense stream, so 0.05 leaves a wide margin while
// still engaging well before rows fully quiesce.
const DefaultSparseDensity = 0.05

// PrepStats records preprocessing cost (Table 4).
type PrepStats struct {
	FilterTime    time.Duration
	PartitionTime time.Duration
	// ReorderTime is the cost of the optional submatrix reordering
	// (Config.Reorder); zero when no reordering ran.
	ReorderTime time.Duration
	// TuneTime is the cost of the measured block-side auto-tuner
	// (Config.AutoTune); zero when tuning did not run.
	TuneTime time.Duration
}

// Total returns the end-to-end preprocessing time.
func (p PrepStats) Total() time.Duration {
	return p.FilterTime + p.ReorderTime + p.TuneTime + p.PartitionTime
}

// Engine is a preprocessed Mixen instance, reusable across algorithm runs
// on the same graph.
//
// Concurrency contract: after New returns, the engine — configuration,
// filtered graph, partition — is read-only. Run, RunWithStats and
// RunInWorkspace (on distinct workspaces) are safe to call from any number
// of goroutines on one engine; every piece of mutable run state lives in a
// per-run Workspace. Programs must be read-only during Run (see
// vprog.Program); the same Program value may serve concurrent runs if its
// implementation honours that contract. SetCollector may race with
// in-flight runs (the swap is atomic; a run uses the collector it observed
// at start).
type Engine struct {
	cfg  Config
	F    *filter.Filtered
	P    *block.Partition
	Prep PrepStats

	// sh is the shard layout when the engine was built with Config.Shards
	// > 1 (nil otherwise). P is then sh.Exec, the combined execution
	// partition: shard-local blocks first, cut (outbox) blocks after, with
	// identical per-destination fold order to the single-partition build.
	sh *block.Sharding

	// prebuilt marks an engine assembled from an already-built partition
	// (NewFromPrebuilt over a .mixp mapping): Prep is zero — the whole
	// point — and F.G is typically nil.
	prebuilt bool

	// Tuned is the measured auto-tuner's trial table (one row per
	// candidate side, in probing order) when Config.AutoTune selected the
	// block side; nil when tuning did not run. tunedSide mirrors the
	// chosen side for RunStats reporting (0 when untuned).
	Tuned     []SideTrial
	tunedSide int

	// SkippedBlocks counts sub-blocks (always sub-blocks, the unit of
	// block.Partition.Rows — never block-rows) whose Scatter was skipped
	// by the activity mask during the most recent Run
	// (observability/testing). Reset at the start of every run; safe to
	// read concurrently (e.g. from a metrics poller) while a run is in
	// flight. With multiple concurrent runs the value interleaves their
	// counts — use RunStats.SkippedBlocks for a per-run exact figure.
	SkippedBlocks atomic.Int64

	// state bundles the collector with its cached instrument handles so a
	// SetCollector racing with runs swaps both atomically.
	state atomic.Pointer[engineState]

	// wsPools holds one *sync.Pool of Workspaces per property width, so
	// steady-state serving reuses run state instead of reallocating it.
	wsPools sync.Map
}

type engineState struct {
	col obs.Collector
	m   engineMetrics
}

// engineMetrics caches the collector's instrument handles so the hot loop
// never performs name lookups. All handles are nil under the no-op
// collector, making every update a single branch.
type engineMetrics struct {
	runs            *obs.Counter
	cancelledRuns   *obs.Counter
	deadlineRuns    *obs.Counter
	iterations      *obs.Counter
	skippedBlocks   *obs.Counter
	denseRows       *obs.Counter
	sparseRows      *obs.Counter
	scatterEntries  *obs.Counter
	gatherEdges     *obs.Counter
	exchangeEntries *obs.Counter
	activeRows      *obs.Gauge
	frontierDensity *obs.Gauge
	preNs           *obs.Histogram
	mainNs          *obs.Histogram
	postNs          *obs.Histogram
	scatterNs       *obs.Histogram
	cacheNs         *obs.Histogram
	gatherNs        *obs.Histogram
	exchangeNs      *obs.Histogram
	iterNs          *obs.Histogram
}

func newEngineMetrics(c obs.Collector) engineMetrics {
	return engineMetrics{
		runs:            c.Counter("core.runs"),
		cancelledRuns:   c.Counter("core.cancelled_runs"),
		deadlineRuns:    c.Counter("core.deadline_runs"),
		iterations:      c.Counter("core.iterations"),
		skippedBlocks:   c.Counter("core.skipped_blocks"),
		denseRows:       c.Counter("core.dense_rows"),
		sparseRows:      c.Counter("core.sparse_rows"),
		scatterEntries:  c.Counter("core.scatter_entries"),
		gatherEdges:     c.Counter("core.gather_edges"),
		exchangeEntries: c.Counter("core.exchange_entries"),
		activeRows:      c.Gauge("core.active_block_rows"),
		frontierDensity: c.Gauge("core.frontier_density_permille"),
		preNs:           c.Histogram("core.pre_ns"),
		mainNs:          c.Histogram("core.main_ns"),
		postNs:          c.Histogram("core.post_ns"),
		scatterNs:       c.Histogram("core.scatter_ns"),
		cacheNs:         c.Histogram("core.cache_ns"),
		gatherNs:        c.Histogram("core.gather_apply_ns"),
		exchangeNs:      c.Histogram("core.exchange_ns"),
		iterNs:          c.Histogram("core.iteration_ns"),
	}
}

// SetCollector attaches (or replaces) the telemetry collector for future
// runs. Implements obs.Instrumentable.
func (e *Engine) SetCollector(c obs.Collector) {
	col := obs.Default(c)
	e.state.Store(&engineState{col: col, m: newEngineMetrics(col)})
}

// Collector returns the attached collector (never nil).
func (e *Engine) Collector() obs.Collector { return e.state.Load().col }

// New preprocesses g: filtering/relabeling, the optional skew-aware
// submatrix reordering (Config.Reorder), the optional measured block-side
// auto-tuning (Config.AutoTune), and 2-D blocking of the regular
// submatrix.
func New(g *graph.Graph, cfg Config) (*Engine, error) {
	cfg = cfg.withDefaults()
	col := obs.Default(cfg.Collector)
	t0 := time.Now()
	f := filter.FilterWithOptions(g, filter.Options{Order: cfg.regularOrder(), Collector: col})
	t1 := time.Now()

	var reorderTime time.Duration
	if err := applyReorder(f, cfg); err != nil {
		return nil, err
	}
	if cfg.Reorder != "" && cfg.Reorder != reorder.Original {
		reorderTime = time.Since(t1)
		col.Histogram("core.reorder_ns").Observe(int64(reorderTime))
	}

	// Measured auto-tuning: probe candidate sides and adopt the fastest.
	// An explicit Side wins; the trial that built the winning partition is
	// reused below so tuning never builds the final partition twice.
	var (
		tuned     []SideTrial
		tunedSide int
		tunedP    *block.Partition
		tuneTime  time.Duration
	)
	if cfg.AutoTune && cfg.Side == 0 {
		tTune := time.Now()
		var err error
		tuned, tunedP, err = autotuneSide(f, cfg)
		if err != nil {
			return nil, fmt.Errorf("core: autotune: %w", err)
		}
		if tunedP != nil {
			tunedSide = tunedP.Side
			cfg.Side = tunedSide
		}
		tuneTime = time.Since(tTune)
		col.Histogram("core.tune_ns").Observe(int64(tuneTime))
	}

	t2 := time.Now()
	bcfg := block.Config{
		Side:               cfg.Side,
		MaxLoadFactor:      cfg.MaxLoadFactor,
		DisableCompression: cfg.DisableCompression,
		Threads:            cfg.Threads,
		Collector:          col,
	}
	var p *block.Partition
	var sh *block.Sharding
	var err error
	switch {
	case cfg.Shards > 1:
		sh, err = block.NewSharding(f.RegPtr, f.RegIdx, f.NumRegular, cfg.Shards, bcfg)
		if err != nil {
			return nil, fmt.Errorf("core: sharding: %w", err)
		}
		if sh.S <= 1 {
			// The submatrix has too few blocks to split; run single-partition.
			sh, p = nil, sh.Exec
		} else {
			p = sh.Exec
		}
	case tunedP != nil:
		p = tunedP
	default:
		p, err = block.NewPartition(f.RegPtr, f.RegIdx, f.NumRegular, bcfg)
		if err != nil {
			return nil, fmt.Errorf("core: partition: %w", err)
		}
	}
	t3 := time.Now()
	e := &Engine{
		cfg:       cfg,
		F:         f,
		P:         p,
		sh:        sh,
		Tuned:     tuned,
		tunedSide: tunedSide,
		Prep: PrepStats{
			FilterTime:    t1.Sub(t0),
			ReorderTime:   reorderTime,
			TuneTime:      tuneTime,
			PartitionTime: t3.Sub(t2),
		},
	}
	e.SetCollector(col)
	col.Histogram("core.filter_ns").Observe(int64(e.Prep.FilterTime))
	col.Histogram("core.partition_ns").Observe(int64(e.Prep.PartitionTime))
	return e, nil
}

// applyReorder permutes the filtered regular submatrix per Config.Reorder
// (no-op for "" and "original"). Degrees are measured INSIDE the
// submatrix — the skew the SCGA Gather actually sees — not on the whole
// graph.
func applyReorder(f *filter.Filtered, cfg Config) error {
	if cfg.Reorder == "" || cfg.Reorder == reorder.Original {
		return nil
	}
	perm, err := reorder.PermutationFromDegrees(f.RegularInDegrees(), cfg.Reorder, cfg.ReorderSeed)
	if err != nil {
		return fmt.Errorf("core: reorder: %w", err)
	}
	if err := f.PermuteRegular(perm); err != nil {
		return fmt.Errorf("core: reorder: %w", err)
	}
	return nil
}

// PrepareFiltered runs the engine's preprocessing up to — but not
// including — partitioning: filtering/relabeling plus the optional
// submatrix reordering. internal/tune uses it to predict a block side for
// a (graph, config) pair without building partitions.
func PrepareFiltered(g *graph.Graph, cfg Config) (*filter.Filtered, error) {
	cfg = cfg.withDefaults()
	f := filter.FilterWithOptions(g, filter.Options{Order: cfg.regularOrder(), Collector: obs.Default(cfg.Collector)})
	if err := applyReorder(f, cfg); err != nil {
		return nil, err
	}
	return f, nil
}

// Graph returns the original graph, or nil for an engine assembled from a
// prebuilt partition (the .mixp file does not carry the raw graph).
func (e *Engine) Graph() *graph.Graph { return e.F.G }

// Name implements vprog.Engine.
func (e *Engine) Name() string { return "mixen" }

// TrafficPerIteration models the main-phase memory traffic per iteration on
// the actual partition (Equation 1, 4r+4m̃, refined by edge compression),
// for scalar (width-1) properties.
func (e *Engine) TrafficPerIteration() int64 {
	return e.P.TrafficPerIteration(1, !e.cfg.DisableCache)
}

// RandomAccessesPerIteration counts block switches per iteration
// (Equation 2, O((αn/c)²)).
func (e *Engine) RandomAccessesPerIteration() int64 {
	return e.P.RandomAccessesPerIteration()
}

// RunStats breaks a run down by phase.
type RunStats struct {
	PreTime  time.Duration
	MainTime time.Duration
	PostTime time.Duration
	// MainIterations equals Result.Iterations.
	MainIterations int
	// SkippedBlocks is the run's total count of sub-blocks whose Scatter
	// was skipped outright because their block-row had no changed source.
	// The unit is sub-blocks (block.Partition.Rows entries), never
	// block-rows, in every path — traced and untraced alike.
	SkippedBlocks int64
	// ScatterEntries totals the dynamic-bin entries (re)written by Scatter
	// across iterations: a dense-mode row contributes all its entries, a
	// sparse-mode row only its frontier's, a skipped row none. The
	// always-dense figure is MainIterations × Partition.CompressedEntries.
	ScatterEntries int64
	// GatherEdges totals the edges Gather replayed across iterations
	// (skipped block-columns contribute nothing). The always-dense figure
	// is MainIterations × Partition.Nnz.
	GatherEdges int64
	// DenseRowIterations / SparseRowIterations count per-iteration
	// block-row mode decisions: one dense-mode row for one iteration adds
	// one to DenseRowIterations.
	DenseRowIterations  int64
	SparseRowIterations int64
	// TunedSide is the block side the measured auto-tuner selected for
	// this engine (0 when Config.AutoTune was off or an explicit Side
	// pre-empted it). Constant across runs; carried here so per-run
	// reports are self-describing.
	TunedSide int
	// ExchangeEntries totals the outbox (cross-shard) bin entries written
	// by Scatter across iterations on a sharded engine: a dense-mode row
	// contributes its cut entries, a sparse-mode row its frontier's cut
	// entries, a skipped row none. Always zero on a single-partition
	// engine, and on untraced sharded runs (the untraced hot loop does no
	// per-iteration accounting).
	ExchangeEntries int64
	// Trace is the per-iteration timeline, populated when Config.Trace is
	// set (nil otherwise).
	Trace []obs.IterationTrace
}

// Total returns the end-to-end execution time across the three phases.
func (s RunStats) Total() time.Duration { return s.PreTime + s.MainTime + s.PostTime }

// Run executes prog to convergence (or prog.MaxIter) and returns the final
// values in original id order. Safe for concurrent callers on one engine.
func (e *Engine) Run(prog vprog.Program) (*vprog.Result, error) {
	res, _, err := e.RunWithStats(prog)
	return res, err
}

// RunCtx is Run with cooperative cancellation: the run observes ctx at
// iteration and phase boundaries and returns ctx.Err() once it is
// cancelled or past its deadline. Implements vprog.ContextRunner.
func (e *Engine) RunCtx(ctx context.Context, prog vprog.Program) (*vprog.Result, error) {
	res, _, err := e.RunWithStatsCtx(ctx, prog)
	return res, err
}

// RunWithStats is Run plus per-phase timing. Safe for concurrent callers
// on one engine: each invocation borrows a workspace from the engine's
// width-keyed pool and returns values copied into a fresh slice.
func (e *Engine) RunWithStats(prog vprog.Program) (*vprog.Result, RunStats, error) {
	return e.RunWithStatsCtx(context.Background(), prog)
}

// RunWithStatsCtx is RunWithStats with cooperative cancellation (see
// RunCtx). On cancellation it returns a nil Result, the partial RunStats
// accumulated so far, and ctx.Err(); the borrowed workspace goes back to
// the pool in a reusable state either way (every run fully re-initialises
// the per-run state it reads).
func (e *Engine) RunWithStatsCtx(ctx context.Context, prog vprog.Program) (*vprog.Result, RunStats, error) {
	w := prog.Width()
	if w <= 0 {
		return nil, RunStats{}, fmt.Errorf("core: program width %d must be positive", w)
	}
	pool := e.workspacePool(w)
	ws := pool.Get().(*Workspace)
	defer pool.Put(ws)
	// The result must survive the workspace's return to the pool, so it is
	// written into a fresh slice rather than the workspace's out buffer.
	out := make([]float64, e.F.N()*w)
	return e.runInWorkspace(ctx, prog, ws, out)
}

// RunInWorkspace executes prog inside a caller-owned workspace obtained
// from NewWorkspace, for zero-allocation steady-state serving. The
// returned Result.Values ALIASES the workspace's internal buffer: it is
// valid until the next RunInWorkspace call on the same workspace (copy it
// out to keep it). A workspace serves one run at a time; concurrent runs
// need one workspace each.
func (e *Engine) RunInWorkspace(prog vprog.Program, ws *Workspace) (*vprog.Result, RunStats, error) {
	return e.RunInWorkspaceCtx(context.Background(), prog, ws)
}

// RunInWorkspaceCtx is RunInWorkspace with cooperative cancellation (see
// RunCtx). A context that cannot be cancelled (context.Background()) adds
// nothing to the hot path, preserving the zero-allocation steady state; a
// cancellable one costs a single AfterFunc registration up front and one
// atomic flag load per main-phase iteration. After a cancelled run the
// workspace remains valid for the next RunInWorkspaceCtx call — the next
// run re-initialises everything it reads.
func (e *Engine) RunInWorkspaceCtx(ctx context.Context, prog vprog.Program, ws *Workspace) (*vprog.Result, RunStats, error) {
	if ws == nil || ws.eng != e {
		return nil, RunStats{}, fmt.Errorf("core: workspace does not belong to this engine")
	}
	if w := prog.Width(); w != ws.width {
		return nil, RunStats{}, fmt.Errorf("core: program width %d does not match workspace width %d", w, ws.width)
	}
	return e.runInWorkspace(ctx, prog, ws, ws.out)
}

// RunToCtx executes prog inside a caller-owned workspace like
// RunInWorkspaceCtx, but writes the final values into the caller's out
// slice (len n·width, original id order) instead of the workspace's
// internal buffer. Result.Values aliases out, which survives subsequent
// runs on the same workspace — the zero-copy path for serving layers
// that keep the computed vector (e.g. a result cache) while reusing one
// workspace across refinement runs.
func (e *Engine) RunToCtx(ctx context.Context, prog vprog.Program, ws *Workspace, out []float64) (*vprog.Result, RunStats, error) {
	if ws == nil || ws.eng != e {
		return nil, RunStats{}, fmt.Errorf("core: workspace does not belong to this engine")
	}
	w := prog.Width()
	if w != ws.width {
		return nil, RunStats{}, fmt.Errorf("core: program width %d does not match workspace width %d", w, ws.width)
	}
	if want := e.F.N() * w; len(out) != want {
		return nil, RunStats{}, fmt.Errorf("core: out length %d, want n*width = %d", len(out), want)
	}
	return e.runInWorkspace(ctx, prog, ws, out)
}

// ctxDone reports whether a ctx.Done() channel is closed, without
// blocking. cancel closes the channel synchronously in the cancelling
// goroutine, so this is the deterministic signal at iteration boundaries;
// the AfterFunc-armed stop flag may lag behind it under full CPU load.
func ctxDone(done <-chan struct{}) bool {
	select {
	case <-done:
		return true
	default:
		return false
	}
}

// cancelled books one cancelled/deadline-expired run and returns err.
func (m *engineMetrics) cancelled(err error) error {
	if errors.Is(err, context.DeadlineExceeded) {
		m.deadlineRuns.Inc()
	} else {
		m.cancelledRuns.Inc()
	}
	return err
}

// runInWorkspace is the SCGA run loop. All mutable state lives in ws and
// out; the engine and partition are only read, which is what makes
// concurrent runs on one engine safe.
//
// Cancellation is cooperative: a cancellable ctx arms the workspace's stop
// flag through context.AfterFunc, the coordinator checks the flag once per
// main-phase iteration and at phase boundaries, and the phase loops
// themselves abandon unclaimed chunks once the flag is set
// (sched.ForRangeStop) so a cancel mid-iteration does not wait for a full
// sweep over a large graph. On cancellation the run returns ctx.Err() with
// the partial RunStats; the workspace stays reusable because the next run
// re-initialises x/y (initBody), the static bins, the frontier state and —
// via the forced all-dense first iteration — every dynamic bin entry.
func (e *Engine) runInWorkspace(ctx context.Context, prog vprog.Program, ws *Workspace, out []float64) (*vprog.Result, RunStats, error) {
	w := prog.Width()
	if w <= 0 {
		return nil, RunStats{}, fmt.Errorf("core: program width %d must be positive", w)
	}
	n := e.F.N()
	r := e.F.NumRegular
	st := e.state.Load()
	var stats RunStats

	// Request-scoped traces riding on ctx (one per fused batch member).
	// One Value lookup; nil — and therefore free past this line — for
	// every untraced run, preserving the zero-allocation steady state.
	reqTraces := obs.ContextTraces(ctx)

	// Bind this run into the workspace's prebuilt execution context.
	rc := &ws.rc
	rc.stopPtr = nil
	var done <-chan struct{}
	if done = ctx.Done(); done != nil {
		if err := ctx.Err(); err != nil {
			return nil, stats, st.m.cancelled(err)
		}
		rc.stop.Store(false)
		rc.stopPtr = &rc.stop
		// The stop flag lets phase loops abandon unclaimed chunks
		// mid-iteration; AfterFunc arms it from a separate goroutine, which
		// may lag when every P is busy in the phase loops, so the
		// coordinator additionally polls the done channel (closed
		// synchronously by cancel) at iteration boundaries.
		unregister := context.AfterFunc(ctx, func() { rc.stop.Store(true) })
		defer unregister()
	}
	rc.prog = prog
	rc.ring = prog.Ring()
	rc.threads = e.cfg.Threads
	rc.x, rc.y = ws.x, ws.y
	rc.out = out
	rc.skipped.Store(0)
	rc.track = !e.cfg.DisableActiveTracking
	rc.canSparse = rc.track && !e.cfg.DisableSparse &&
		e.cfg.SparseDensity > 0 && e.P.SrcEntryIdx != nil
	rc.sparseEnter = e.cfg.SparseDensity
	rc.sparseExit = 2 * e.cfg.SparseDensity
	// Pooled workspaces carry the previous run's frontier state; reset the
	// hysteresis and worklists (the first iteration forces all-dense
	// regardless, so this is hygiene plus deterministic mode decisions).
	for i := range rc.rowSticky {
		rc.rowSticky[i] = modeDense
		rc.workLen[i] = 0
		rc.workEnt[i] = 0
	}

	// x and y are full property arrays in NEW id space. Both carry the seed
	// segment (constant) so pointer swapping stays valid.
	sched.ForRange(n, rc.threads, 1024, rc.initBody)
	copy(rc.y, rc.x)

	st.m.runs.Inc()

	// Pre-Phase: accumulate the seed contributions into the static bins.
	t0 := time.Now()
	fillIdentity(rc.sta, rc.ring)
	e.pushSeeds(rc.x, rc.scale, rc.sta, rc.ring, w)
	stats.PreTime = time.Since(t0)
	st.m.preNs.Observe(int64(stats.PreTime))
	for _, t := range reqTraces {
		t.AddSpanIter(obs.SpanPrePhase, 0, t0, t0.Add(stats.PreTime))
	}

	// Main-Phase.
	t1 := time.Now()
	iter := 0
	delta := math.Inf(1)
	e.SkippedBlocks.Store(0)
	var lastSkipped int64
	// Per-iteration tracing is on when explicitly requested, when a
	// recording collector is attached, or when the run carries
	// request-scoped traces; the timeline slice itself is only kept when
	// Config.Trace asks for it.
	traced := e.cfg.Trace || st.col.Enabled() || len(reqTraces) > 0
	for iter < prog.MaxIter() {
		// Iteration-boundary cancellation check: one predictable branch,
		// one atomic load and one non-blocking channel poll on cancellable
		// runs, nothing otherwise.
		if rc.stopPtr != nil && (rc.stopPtr.Load() || ctxDone(done)) {
			stats.MainTime = time.Since(t1)
			stats.MainIterations = iter
			stats.SkippedBlocks = rc.skipped.Load()
			return nil, stats, st.m.cancelled(ctx.Err())
		}
		rc.first = iter == 0
		if e.cfg.DisableCache {
			// Ablation: redo the seed propagation every iteration.
			fillIdentity(rc.sta, rc.ring)
			e.pushSeeds(rc.x, rc.scale, rc.sta, rc.ring, w)
		}
		var it obs.IterationTrace
		var d float64
		if traced {
			rc.planIteration()
			it.Iter = iter + 1
			it.TotalBlockRows = e.P.B
			it.ActiveBlockRows = e.P.B - rc.emptyRows
			it.FrontierNodes = rc.frontierNodes
			it.FrontierEntries = rc.frontierEntries
			it.DenseRows = rc.denseRows
			it.SparseRows = rc.sparseRows
			it.ScatterEntries = rc.scatterEntries
			mark := time.Now()
			if e.sh == nil {
				sched.ForRangeStop(len(e.P.Blocks), rc.threads, 1, rc.stopPtr, rc.scatterBody)
			} else {
				// Sharded engine: the scatter splits into the shard-local
				// pass and the cross-shard exchange — the pass over the cut
				// blocks that fills the per-(source-shard, dest-shard)
				// outbox bins. Same bodies, same bins, same fold order; the
				// split exists so the exchange is separately observable.
				sched.ForRangeStop(e.sh.NumLocalBlocks, rc.threads, 1, rc.stopPtr, rc.scatterBody)
				exStart := time.Now()
				sched.ForRangeStop(len(e.P.Blocks)-e.sh.NumLocalBlocks, rc.threads, 1, rc.stopPtr, rc.cutScatterBody)
				exEnd := time.Now()
				it.ExchangeNs = exEnd.Sub(exStart).Nanoseconds()
				it.ExchangeEntries = rc.exchangeEntries(e.sh)
				stats.ExchangeEntries += it.ExchangeEntries
				st.m.exchangeNs.Observe(it.ExchangeNs)
				st.m.exchangeEntries.Add(it.ExchangeEntries)
				for _, t := range reqTraces {
					t.AddSpanIter(obs.SpanExchange, iter+1, exStart, exEnd)
				}
			}
			if rc.sparseTotal > 0 {
				sched.ForRangeStop(int(rc.sparseTotal), rc.threads, 0, rc.stopPtr, rc.sparseScatterBody)
			}
			now := time.Now()
			it.ScatterNs = now.Sub(mark).Nanoseconds()
			st.m.scatterNs.Observe(it.ScatterNs)
			mark = now
			sched.ForRangeStop(r*w, rc.threads, 8192, rc.stopPtr, rc.cacheBody)
			now = time.Now()
			it.CacheNs = now.Sub(mark).Nanoseconds()
			st.m.cacheNs.Observe(it.CacheNs)
			mark = now
			sched.ForRangeStop(e.P.B, rc.threads, 1, rc.stopPtr, rc.gatherBody)
			it.GatherNs = time.Since(mark).Nanoseconds()
			st.m.gatherNs.Observe(it.GatherNs)
			// One iteration span per request trace, covering
			// Scatter+Cache+Gather (derived from the phase marks — no
			// extra clock reads on the traced path).
			if len(reqTraces) > 0 {
				iterStart := mark.Add(-time.Duration(it.ScatterNs + it.CacheNs))
				iterEnd := mark.Add(time.Duration(it.GatherNs))
				for _, t := range reqTraces {
					t.AddSpanIter(obs.SpanIteration, iter+1, iterStart, iterEnd)
				}
			}
			for _, cd := range rc.colDelta {
				d += cd
			}
		} else {
			d = rc.iterateMain()
		}
		ge := rc.drainedEdges()
		stats.ScatterEntries += rc.scatterEntries
		stats.GatherEdges += ge
		stats.DenseRowIterations += int64(rc.denseRows)
		stats.SparseRowIterations += int64(rc.sparseRows)
		// Per-iteration skip accounting: rc.skipped is cumulative over the
		// run, the engine counter mirrors it for live observation.
		cur := rc.skipped.Load()
		it.SkippedBlocks = cur - lastSkipped
		e.SkippedBlocks.Add(cur - lastSkipped)
		lastSkipped = cur
		rc.x, rc.y = rc.y, rc.x
		iter++
		delta = d
		if traced {
			it.GatherEdges = ge
			it.Delta = d
			st.m.iterations.Inc()
			st.m.activeRows.Set(int64(it.ActiveBlockRows))
			st.m.denseRows.Add(int64(rc.denseRows))
			st.m.sparseRows.Add(int64(rc.sparseRows))
			st.m.scatterEntries.Add(rc.scatterEntries)
			st.m.gatherEdges.Add(ge)
			if ce := e.P.CompressedEntries; ce > 0 {
				st.m.frontierDensity.Set(1000 * rc.frontierEntries / ce)
			}
			st.m.iterNs.Observe(it.TotalNs())
			if e.cfg.Trace {
				stats.Trace = append(stats.Trace, it)
			}
		}
		if prog.Converged(delta, iter) {
			break
		}
	}
	stats.MainTime = time.Since(t1)
	stats.MainIterations = iter
	stats.SkippedBlocks = rc.skipped.Load()
	stats.TunedSide = e.tunedSide
	st.m.mainNs.Observe(int64(stats.MainTime))
	st.m.skippedBlocks.Add(stats.SkippedBlocks)

	// Phase-boundary cancellation check: a cancel that fired during the
	// final iteration may have torn it mid-phase (abandoned chunks), so
	// the run must not publish a result built from it.
	if rc.stopPtr != nil && (rc.stopPtr.Load() || ctxDone(done)) {
		return nil, stats, st.m.cancelled(ctx.Err())
	}

	// Post-Phase: sinks pull once from the final source values. Stateful
	// programs (vprog.Batch) are told the main loop is over so their Apply
	// treats the deferred one-shot evaluation as such.
	t2 := time.Now()
	if pp, ok := prog.(vprog.PostPhaser); ok {
		pp.EnterPostPhase()
	}
	e.postSinks(prog, rc.x, rc.scale, rc.ring, w, rc.threads)
	stats.PostTime = time.Since(t2)
	st.m.postNs.Observe(int64(stats.PostTime))
	for _, t := range reqTraces {
		t.AddSpanIter(obs.SpanPostPhase, 0, t2, t2.Add(stats.PostTime))
	}

	// Translate back to original id order.
	sched.ForRange(n, rc.threads, 1024, rc.translateBody)
	return &vprog.Result{Values: out, Iterations: iter, Delta: delta}, stats, nil
}

// EffectiveConfig reports the configuration the engine actually runs with
// (after defaulting), for run-report headers: what happened, not what was
// asked for.
func (e *Engine) EffectiveConfig() map[string]string {
	cfg := map[string]string{
		"side":        strconv.Itoa(e.P.Side),
		"threads":     strconv.Itoa(e.cfg.Threads),
		"load_factor": strconv.FormatFloat(e.cfg.MaxLoadFactor, 'g', -1, 64),
	}
	if e.sh != nil {
		cfg["shards"] = strconv.Itoa(e.sh.S)
	}
	if e.cfg.DisableCache {
		cfg["cache"] = "off"
	}
	if e.cfg.DisableCompression {
		cfg["compression"] = "off"
	}
	if e.cfg.DisableActiveTracking {
		cfg["active_tracking"] = "off"
	}
	if e.cfg.DisableSparse || e.cfg.SparseDensity < 0 || e.cfg.DisableActiveTracking {
		cfg["sparse"] = "off"
	} else if e.cfg.SparseDensity != DefaultSparseDensity {
		cfg["sparse_density"] = strconv.FormatFloat(e.cfg.SparseDensity, 'g', -1, 64)
	}
	switch {
	case e.cfg.DegreeSortOrder:
		cfg["order"] = "degree-sort"
	case e.cfg.DisableHubOrder:
		cfg["order"] = "original"
	default:
		cfg["order"] = "hub-first"
	}
	if e.cfg.Reorder != "" && e.cfg.Reorder != reorder.Original {
		cfg["reorder"] = string(e.cfg.Reorder)
	}
	if len(e.Tuned) > 0 {
		cfg["autotune"] = "measured"
	} else if e.cfg.AutoTune {
		// Requested but pre-empted by an explicit Side.
		cfg["autotune"] = "off-explicit-side"
	}
	if e.prebuilt {
		cfg["partition"] = "prebuilt"
	}
	return cfg
}

// BuildReport assembles the JSON-serializable run report for a completed
// RunWithStats invocation: effective config, prep + phase breakdown, the
// per-iteration trace (when enabled), and a metrics snapshot when the
// attached collector records one.
func (e *Engine) BuildReport(algorithm, graphName string, res *vprog.Result, stats RunStats) *obs.RunReport {
	gi := obs.GraphInfo{Name: graphName, Nodes: e.F.N()}
	if g := e.F.G; g != nil {
		gi.Edges = g.NumEdges()
	}
	r := &obs.RunReport{
		Engine:     e.Name(),
		Algorithm:  algorithm,
		Graph:      gi,
		Config:     e.EffectiveConfig(),
		Iterations: stats.MainIterations,
		Trace:      stats.Trace,
	}
	if res != nil {
		r.Delta = res.Delta
	}
	r.AddPhase("filter", e.Prep.FilterTime)
	r.AddPhase("partition", e.Prep.PartitionTime)
	r.AddPhase("pre", stats.PreTime)
	r.AddPhase("main", stats.MainTime)
	r.AddPhase("post", stats.PostTime)
	if sn, ok := e.Collector().(interface{ Snapshot() obs.Snapshot }); ok {
		s := sn.Snapshot()
		r.Metrics = &s
	}
	return r
}

// fillIdentity resets a bin array to the ring's ⊕-identity.
func fillIdentity(a []float64, ring vprog.Ring) {
	if ring == vprog.Min {
		inf := math.Inf(1)
		for i := range a {
			a[i] = inf
		}
		return
	}
	for i := range a {
		a[i] = 0
	}
}

// pushSeeds accumulates send(x_seed) into sta over the seed CSR. sta must
// already hold the ring identity. Seeds are partitioned statically across
// workers with per-worker partial bins to avoid write contention, then
// reduced (identity-valued partials collapse under either ring).
func (e *Engine) pushSeeds(x, scale, sta []float64, ring vprog.Ring, w int) {
	f := e.F
	s := f.NumSeed
	if s == 0 || f.NumRegular == 0 {
		return
	}
	threads := e.cfg.Threads
	if threads > s {
		threads = s
	}
	if threads <= 1 {
		e.pushSeedRangeInto(x, scale, sta, ring, w, 0, s)
		return
	}
	partials := make([][]float64, threads)
	sched.ForStatic(s, threads, func(worker, lo, hi int) {
		part := make([]float64, len(sta))
		fillIdentity(part, ring)
		e.pushSeedRangeInto(x, scale, part, ring, w, lo, hi)
		partials[worker] = part
	})
	sched.For(len(sta), threads, 4096, func(i int) {
		acc := sta[i]
		for _, part := range partials {
			acc = ring.Combine(acc, part[i])
		}
		sta[i] = acc
	})
}

func (e *Engine) pushSeedRangeInto(x, scale, dst []float64, ring vprog.Ring, w, lo, hi int) {
	f := e.F
	base := f.NumRegular
	for i := lo; i < hi; i++ {
		u := base + i
		row := f.SeedIdx[f.SeedPtr[i]:f.SeedPtr[i+1]]
		if len(row) == 0 {
			continue
		}
		sc := scale[u]
		if ring == vprog.Sum {
			for l := 0; l < w; l++ {
				v := x[u*w+l] * sc
				for _, d := range row {
					dst[int(d)*w+l] += v
				}
			}
		} else {
			for l := 0; l < w; l++ {
				v := x[u*w+l] + sc
				for _, d := range row {
					di := int(d)*w + l
					if v < dst[di] {
						dst[di] = v
					}
				}
			}
		}
	}
}

// postSinks computes each sink's value once from the final source values
// (SCGA Post-Phase) via the sink CSC.
func (e *Engine) postSinks(prog vprog.Program, x, scale []float64, ring vprog.Ring, w, threads int) {
	f := e.F
	k := f.NumSink
	if k == 0 {
		return
	}
	base := f.SinkBound()
	sched.ForRange(k, threads, 64, func(lo, hi int) {
		acc := make([]float64, w)
		for i := lo; i < hi; i++ {
			v := base + i
			id := ring.Identity()
			for l := 0; l < w; l++ {
				acc[l] = id
			}
			for _, u := range f.SinkIdx[f.SinkPtr[i]:f.SinkPtr[i+1]] {
				sc := scale[u]
				ub := int(u) * w
				if ring == vprog.Sum {
					for l := 0; l < w; l++ {
						acc[l] += x[ub+l] * sc
					}
				} else {
					for l := 0; l < w; l++ {
						s := x[ub+l] + sc
						if s < acc[l] {
							acc[l] = s
						}
					}
				}
			}
			old := uint32(f.OldID[v])
			prog.Apply(old, acc, x[v*w:v*w+w], x[v*w:v*w+w])
		}
	})
}

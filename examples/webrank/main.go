// Webrank: the workload that motivates the paper's introduction — link
// analysis of a web-crawl-shaped graph. Builds a wiki-like skewed graph
// (22% regular / 33% seed / 45% sink, hub-dominated), then compares three
// link-analysis rankings (InDegree, PageRank, SALSA) and shows how much of
// the graph Mixen's filtering removes from the iterative hot loop.
//
//	go run ./examples/webrank
package main

import (
	"fmt"
	"log"
	"sort"

	"mixen"
)

func main() {
	g, err := mixen.Dataset("wiki", 32)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wiki-like crawl: %d pages, %d hyperlinks\n", g.NumNodes(), g.NumEdges())

	// The filtering stage is the heart of Mixen: only regular nodes stay in
	// the iterative main phase; seeds are cached once and sinks deferred.
	f := mixen.Filter(g)
	fmt.Printf("filtering: %d regular (%.0f%%, of which %d hubs), %d seed, %d sink, %d isolated\n",
		f.NumRegular, 100*f.Alpha(), f.NumHub, f.NumSeed, f.NumSink, f.NumIsolated)
	fmt.Printf("the main phase iterates over %.0f%% of edges (beta=%.2f)\n\n",
		100*f.Beta(), f.Beta())

	eng, err := mixen.New(g, mixen.Config{})
	if err != nil {
		log.Fatal(err)
	}

	indeg, err := eng.Run(mixen.NewInDegreeProgram(1))
	if err != nil {
		log.Fatal(err)
	}
	pr, err := eng.Run(mixen.NewPageRankProgram(g, 0.85, 1e-10, 200))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("PageRank converged in %d iterations\n", pr.Iterations)
	salsaAuth, _ := mixen.SALSA(g, 50, 1e-10)

	fmt.Println("\nrank  InDegree        PageRank        SALSA")
	top := func(vals []float64) []int {
		order := make([]int, len(vals))
		for i := range order {
			order[i] = i
		}
		sort.Slice(order, func(a, b int) bool { return vals[order[a]] > vals[order[b]] })
		return order[:5]
	}
	ti, tp, ts := top(indeg.Values), top(pr.Values), top(salsaAuth)
	for i := 0; i < 5; i++ {
		fmt.Printf("%4d  page %-9d page %-9d page %-9d\n", i+1, ti[i], tp[i], ts[i])
	}

	// The paper's observation (after Borodin et al.): the heuristics agree
	// heavily on skewed graphs. Count the overlap of the top-20 sets.
	overlap := topOverlap(indeg.Values, pr.Values, 20)
	fmt.Printf("\ntop-20 overlap between InDegree and PageRank: %d/20\n", overlap)
}

func topOverlap(a, b []float64, k int) int {
	order := func(vals []float64) map[int]bool {
		idx := make([]int, len(vals))
		for i := range idx {
			idx[i] = i
		}
		sort.Slice(idx, func(x, y int) bool { return vals[idx[x]] > vals[idx[y]] })
		set := make(map[int]bool, k)
		for _, v := range idx[:k] {
			set[v] = true
		}
		return set
	}
	sa, sb := order(a), order(b)
	n := 0
	for v := range sa {
		if sb[v] {
			n++
		}
	}
	return n
}

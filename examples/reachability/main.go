// Reachability: BFS across engines on contrasting topologies — a road-like
// grid (large diameter, no hubs) versus an R-MAT power-law graph (small
// diameter, hub-dominated). Reproduces the paper's observation that the
// frontier-based push engine (Ligra-like) wins BFS while the blocked
// engines win link analysis, and that no single strategy dominates.
//
//	go run ./examples/reachability
package main

import (
	"fmt"
	"log"
	"math"
	"time"

	"mixen"
)

func main() {
	road, err := mixen.Dataset("road", 16)
	if err != nil {
		log.Fatal(err)
	}
	rmat, err := mixen.Dataset("rmat", 16)
	if err != nil {
		log.Fatal(err)
	}

	for _, tc := range []struct {
		name string
		g    *mixen.Graph
	}{{"road", road}, {"rmat", rmat}} {
		fmt.Printf("== %s: %d nodes, %d edges ==\n", tc.name, tc.g.NumNodes(), tc.g.NumEdges())
		source := maxOutNode(tc.g)
		for _, engName := range []string{"mixen", "push", "pull"} {
			e, err := mixen.NewEngine(engName, tc.g, 0, 1)
			if err != nil {
				log.Fatal(err)
			}
			t0 := time.Now()
			var levels []float64
			var rounds int
			// The push engine carries Ligra's native sparse-frontier BFS;
			// the others run level-synchronous tropical propagation.
			if fr, ok := e.(interface {
				RunFrontierBFS(uint32, int) (*mixen.Result, error)
			}); ok {
				res, err := fr.RunFrontierBFS(source, 0)
				if err != nil {
					log.Fatal(err)
				}
				levels, rounds = res.Values, res.Iterations
			} else {
				res, err := e.Run(mixen.NewBFSProgram(tc.g, source))
				if err != nil {
					log.Fatal(err)
				}
				levels, rounds = res.Values, res.Iterations
			}
			elapsed := time.Since(t0)
			reached, ecc := summarize(levels)
			fmt.Printf("  %-8s reached %7d nodes, eccentricity %3.0f, %4d rounds, %v\n",
				engName, reached, ecc, rounds, elapsed.Round(time.Microsecond))
		}
		fmt.Println()
	}
	fmt.Println("note: frontier BFS (push) shines on high-diameter road graphs where")
	fmt.Println("level-synchronous engines pay a full-graph sweep per level.")
}

func maxOutNode(g *mixen.Graph) uint32 {
	var best mixen.Node
	var deg int64 = -1
	for v := 0; v < g.NumNodes(); v++ {
		if d := g.OutDegree(mixen.Node(v)); d > deg {
			deg, best = d, mixen.Node(v)
		}
	}
	return uint32(best)
}

func summarize(levels []float64) (reached int, ecc float64) {
	for _, l := range levels {
		if !math.IsInf(l, 1) {
			reached++
			if l > ecc {
				ecc = l
			}
		}
	}
	return reached, ecc
}

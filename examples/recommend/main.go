// Recommend: collaborative filtering on an interaction graph (the
// track-like preset: a skewed crawl where half the accounts only act as
// followers). Runs the vector-valued CF propagation kernel on the Mixen
// engine and recommends accounts by latent-vector similarity.
//
//	go run ./examples/recommend
package main

import (
	"fmt"
	"log"
	"math"
	"sort"

	"mixen"
)

const k = 8 // latent dimensions

func main() {
	g, err := mixen.Dataset("track", 32)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("follower graph: %d accounts, %d follow edges\n", g.NumNodes(), g.NumEdges())

	s := mixen.Analyze(g)
	fmt.Printf("structure: %.0f%% of accounts only follow (seed), %.0f%% are regular\n",
		100*s.SeedFrac, 100*s.RegularFrac)

	// Propagate latent vectors: each account's embedding becomes a blend of
	// its anchor and the degree-normalised average of its followers'.
	latents, err := mixen.CollaborativeFilter(g, k, 10)
	if err != nil {
		log.Fatal(err)
	}

	// Propagation pulls every embedding toward the global mean; centre the
	// vectors per dimension so similarity reflects the structural signal,
	// not the shared drift.
	center(latents, g.NumNodes())

	// Recommend for a mid-popularity account. (Mega-hubs average over so
	// many followers that their embeddings all collapse to the population
	// mean — a real phenomenon; niche accounts carry the usable signal.)
	var hub mixen.Node
	var deg int64 = -1
	for v := 0; v < g.NumNodes(); v++ {
		if d := g.InDegree(mixen.Node(v)); d >= 5 && d <= 20 && d > deg {
			deg, hub = d, mixen.Node(v)
		}
	}
	if deg < 0 {
		log.Fatal("no mid-popularity account found")
	}
	fmt.Printf("\nquery account %d (%d followers); similar accounts by centred cosine:\n", hub, deg)

	type scored struct {
		v   int
		sim float64
	}
	var cands []scored
	hv := latents[int(hub)*k : int(hub)*k+k]
	for v := 0; v < g.NumNodes(); v++ {
		if mixen.Node(v) == hub || g.InDegree(mixen.Node(v)) == 0 {
			continue
		}
		cands = append(cands, scored{v, cosine(hv, latents[v*k:v*k+k])})
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].sim > cands[j].sim })
	for i := 0; i < 5 && i < len(cands); i++ {
		fmt.Printf("  account %6d  similarity %.4f  (%d followers)\n",
			cands[i].v, cands[i].sim, g.InDegree(mixen.Node(cands[i].v)))
	}
}

func center(latents []float64, n int) {
	for l := 0; l < k; l++ {
		var mean float64
		for v := 0; v < n; v++ {
			mean += latents[v*k+l]
		}
		mean /= float64(n)
		for v := 0; v < n; v++ {
			latents[v*k+l] -= mean
		}
	}
}

func cosine(a, b []float64) float64 {
	var dot, na, nb float64
	for i := range a {
		dot += a[i] * b[i]
		na += a[i] * a[i]
		nb += b[i] * b[i]
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / math.Sqrt(na*nb)
}

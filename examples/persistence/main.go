// Persistence: the production deployment flow — convert an edge list to
// the CSR binary once, persist Mixen's preprocessed (filtered) form
// alongside it, then reload both and run immediately without re-filtering.
// Table 4 shows filtering dominates Mixen's preprocessing; persisting it
// moves that cost entirely offline.
//
//	go run ./examples/persistence
package main

import (
	"bytes"
	"fmt"
	"log"
	"time"

	"mixen"
)

func main() {
	// Offline: build (or crawl) the graph and preprocess it once.
	g, err := mixen.Dataset("pld", 16)
	if err != nil {
		log.Fatal(err)
	}
	t0 := time.Now()
	f := mixen.Filter(g)
	filterTime := time.Since(t0)

	var graphBlob, filteredBlob bytes.Buffer // stand-ins for files on disk
	if err := g.WriteBinary(&graphBlob); err != nil {
		log.Fatal(err)
	}
	if err := f.WriteBinary(&filteredBlob); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("offline: filtered %v in %v; persisted %d B graph + %d B filtered form\n",
		g, filterTime.Round(time.Microsecond), graphBlob.Len(), filteredBlob.Len())

	// Online: reload both and verify the filtered form instead of
	// recomputing it.
	t1 := time.Now()
	g2, err := mixen.ReadBinary(&graphBlob)
	if err != nil {
		log.Fatal(err)
	}
	f2, err := mixen.ReadFiltered(&filteredBlob, g2)
	if err != nil {
		log.Fatal(err)
	}
	reload := time.Since(t1)
	fmt.Printf("online: reloaded + validated in %v (alpha=%.3f beta=%.3f, %d hubs)\n",
		reload, f2.Alpha(), f2.Beta(), f2.NumHub)

	// The reloaded graph runs exactly like the original.
	ranks, err := mixen.PageRank(g2, 0.85, 1e-10, 100)
	if err != nil {
		log.Fatal(err)
	}
	best := 0
	for v := range ranks {
		if ranks[v] > ranks[best] {
			best = v
		}
	}
	fmt.Printf("pagerank on reloaded graph: top node %d (rank %.6f)\n", best, ranks[best])
}

// Quickstart: build a small skewed graph, inspect its connectivity
// structure, and rank its nodes with PageRank on the Mixen engine.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"sort"

	"mixen"
)

func main() {
	// 1. Generate a power-law graph (or load one with mixen.ReadEdgeList).
	g, err := mixen.GenerateRMAT(14, 16, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph: %d nodes, %d edges\n", g.NumNodes(), g.NumEdges())

	// 2. Look at the connectivity structure Mixen exploits.
	s := mixen.Analyze(g)
	fmt.Printf("hubs: %.1f%% of nodes receive %.1f%% of edges\n", 100*s.VHub, 100*s.EHub)
	fmt.Printf("classes: %.0f%% regular, %.0f%% seed, %.0f%% sink, %.0f%% isolated\n",
		100*s.RegularFrac, 100*s.SeedFrac, 100*s.SinkFrac, 100*s.IsolatedFrac)
	fmt.Printf("alpha=%.2f beta=%.2f (Mixen's main phase touches only the alpha-fraction)\n",
		s.Alpha, s.Beta)

	// 3. Rank nodes. The one-shot helper preprocesses (filter + block) and
	// runs to convergence.
	ranks, err := mixen.PageRank(g, 0.85, 1e-10, 100)
	if err != nil {
		log.Fatal(err)
	}

	// 4. Report the top 5.
	order := make([]int, len(ranks))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return ranks[order[a]] > ranks[order[b]] })
	fmt.Println("top 5 nodes by PageRank:")
	for _, v := range order[:5] {
		fmt.Printf("  node %6d  rank %.6f  in-degree %d\n",
			v, ranks[v], g.InDegree(mixen.Node(v)))
	}
}

// Compare: a miniature of the paper's Table 3 — run PageRank on all five
// engines over a skewed and a non-skewed graph and report per-iteration
// times, preprocessing costs, and result agreement. Demonstrates that one
// vertex program runs unchanged on every framework.
//
//	go run ./examples/compare
package main

import (
	"fmt"
	"log"
	"math"
	"time"

	"mixen"
)

const iters = 10

func main() {
	for _, name := range []string{"wiki", "urand"} {
		g, err := mixen.Dataset(name, 16)
		if err != nil {
			log.Fatal(err)
		}
		s := mixen.Analyze(g)
		fmt.Printf("== %s-like: n=%d m=%d alpha=%.2f skew(E_hub)=%.0f%% ==\n",
			name, g.NumNodes(), g.NumEdges(), s.Alpha, 100*s.EHub)

		var reference []float64
		for _, engName := range []string{"mixen", "blockgas", "push", "polymer", "pull"} {
			t0 := time.Now()
			e, err := mixen.NewEngine(engName, g, 0, 1)
			if err != nil {
				log.Fatal(err)
			}
			prep := time.Since(t0)

			prog := mixen.NewPageRankProgram(g, 0.85, 0, iters)
			t1 := time.Now()
			res, err := e.Run(prog)
			if err != nil {
				log.Fatal(err)
			}
			perIter := time.Since(t1) / iters

			agreement := "reference"
			if reference == nil {
				reference = res.Values
			} else {
				maxDiff := 0.0
				for v := range reference {
					if d := math.Abs(res.Values[v] - reference[v]); d > maxDiff {
						maxDiff = d
					}
				}
				agreement = fmt.Sprintf("max |Δ| vs mixen = %.2g", maxDiff)
			}
			fmt.Printf("  %-9s prep %8v  %8v/iter   %s\n",
				engName, prep.Round(time.Microsecond), perIter.Round(time.Microsecond), agreement)
		}
		fmt.Println()
	}
	fmt.Println("(Mixen defers sink nodes to a final Post-Phase, so at a fixed iteration")
	fmt.Println(" count sink values differ from the per-iteration engines by one update;")
	fmt.Println(" at convergence all engines coincide — see internal/algo's equivalence tests.)")
}

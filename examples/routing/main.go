// Routing: single-source shortest paths on a weighted road network —
// the tropical-ring extension of the framework's BFS program, where the
// per-node hop offset becomes a per-edge weight. Compares the three SSSP
// implementations (Dijkstra reference, parallel Bellman-Ford, parallel
// Δ-stepping) for agreement and speed.
//
//	go run ./examples/routing
package main

import (
	"fmt"
	"log"
	"math"
	"time"

	"mixen"
)

func main() {
	// A road grid with 15% of segments missing, edge weights = travel
	// times in [1, 10) minutes.
	road, err := mixen.GenerateRoad(160, 160, 0.15, 5)
	if err != nil {
		log.Fatal(err)
	}
	w, err := mixen.RandomWeights(road, 1, 10, 6)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("road network: %d intersections, %d segments\n", w.NumNodes(), w.NumEdges())

	const source = 0
	type runResult struct {
		name    string
		dist    []float64
		elapsed time.Duration
	}
	var runs []runResult

	t0 := time.Now()
	dj, err := mixen.ShortestPathsDijkstra(w, source)
	if err != nil {
		log.Fatal(err)
	}
	runs = append(runs, runResult{"dijkstra (serial)", dj, time.Since(t0)})

	t0 = time.Now()
	bf, err := mixen.ShortestPathsBellmanFord(w, source, 0)
	if err != nil {
		log.Fatal(err)
	}
	runs = append(runs, runResult{"bellman-ford (parallel rounds)", bf, time.Since(t0)})

	t0 = time.Now()
	ds, err := mixen.ShortestPaths(w, source)
	if err != nil {
		log.Fatal(err)
	}
	runs = append(runs, runResult{"delta-stepping (parallel)", ds, time.Since(t0)})

	for _, r := range runs {
		reached, maxD, sum := 0, 0.0, 0.0
		for _, d := range r.dist {
			if !math.IsInf(d, 1) {
				reached++
				sum += d
				if d > maxD {
					maxD = d
				}
			}
		}
		fmt.Printf("  %-32s %8v  reached %d, max dist %.1f, mean %.1f\n",
			r.name, r.elapsed.Round(time.Microsecond), reached, maxD, sum/float64(reached))
	}

	// Cross-check agreement.
	for v := range dj {
		if !agree(dj[v], bf[v]) || !agree(dj[v], ds[v]) {
			log.Fatalf("disagreement at node %d: %v %v %v", v, dj[v], bf[v], ds[v])
		}
	}
	fmt.Println("all three algorithms agree on every intersection ✓")
}

func agree(a, b float64) bool {
	if math.IsInf(a, 1) && math.IsInf(b, 1) {
		return true
	}
	return math.Abs(a-b) <= 1e-9*(1+math.Abs(a))
}

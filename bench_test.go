package mixen

// Benchmark harness: one bench target per table and figure of the paper's
// evaluation (§6), plus ablation benches for the design choices DESIGN.md
// calls out. Regenerate everything with:
//
//	go test -bench=. -benchmem
//
// cmd/mixenbench produces the same experiments as formatted tables with
// measured values; these testing.B targets are the per-cell timing view.

import (
	"fmt"
	"sync"
	"testing"

	"mixen/internal/algo"
	"mixen/internal/analyze"
	"mixen/internal/baseline"
	"mixen/internal/core"
	"mixen/internal/gen"
	"mixen/internal/graph"
	"mixen/internal/memmodel"
	"mixen/internal/vprog"
)

// benchShrink keeps bench graphs small enough for a single-core CI host
// while preserving every structural property the experiments exercise.
const benchShrink = 64

// benchIters is the fixed iteration count per timed Run.
const benchIters = 2

var (
	benchGraphMu sync.Mutex
	benchGraphs  = map[string]*graph.Graph{}
)

func benchGraph(b *testing.B, name string) *graph.Graph {
	b.Helper()
	benchGraphMu.Lock()
	defer benchGraphMu.Unlock()
	if g, ok := benchGraphs[name]; ok {
		return g
	}
	p, err := gen.ByName(name)
	if err != nil {
		b.Fatal(err)
	}
	g, err := p.Build(benchShrink)
	if err != nil {
		b.Fatal(err)
	}
	benchGraphs[name] = g
	return g
}

func benchEngine(b *testing.B, fw string, g *graph.Graph, width int) vprog.Engine {
	b.Helper()
	var (
		e   vprog.Engine
		err error
	)
	switch fw {
	case "mixen":
		e, err = core.New(g, core.Config{})
	case "blockgas":
		e, err = baseline.NewBlockGAS(g, baseline.BlockGASConfig{Width: width})
	case "push":
		e = baseline.NewPush(g, 0)
	case "polymer":
		e = baseline.NewPolymer(g, 0, 0)
	case "pull":
		e = baseline.NewPull(g, 0)
	default:
		b.Fatalf("unknown framework %q", fw)
	}
	if err != nil {
		b.Fatal(err)
	}
	return e
}

func benchProgram(b *testing.B, alg string, g *graph.Graph) vprog.Program {
	b.Helper()
	switch alg {
	case "IN":
		return algo.NewInDegree(benchIters)
	case "PR":
		return algo.NewPageRank(g, 0.85, 0, benchIters)
	case "CF":
		return algo.NewCF(g, 8, benchIters)
	case "BFS":
		return algo.NewBFS(g, benchBFSSource(g))
	}
	b.Fatalf("unknown algorithm %q", alg)
	return nil
}

func benchBFSSource(g *graph.Graph) uint32 {
	var best graph.Node
	var deg int64 = -1
	for v := 0; v < g.NumNodes(); v++ {
		if d := g.OutDegree(graph.Node(v)); d > deg {
			deg, best = d, graph.Node(v)
		}
	}
	return uint32(best)
}

func benchWidth(alg string) int {
	if alg == "CF" {
		return 8
	}
	return 1
}

// benchGraphNames is the full eight-dataset list of Table 2.
var benchGraphNames = []string{"weibo", "track", "wiki", "pld", "rmat", "kron", "road", "urand"}

// BenchmarkTable1 measures the connectivity analysis (classification + hub
// statistics) whose output reproduces Table 1.
func BenchmarkTable1(b *testing.B) {
	for _, name := range benchGraphNames {
		g := benchGraph(b, name)
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s := analyze.Compute(g)
				if s.N == 0 {
					b.Fatal("empty stats")
				}
			}
		})
	}
}

// BenchmarkTable2 measures the filtering pass that derives α and β
// (Table 2's computed columns).
func BenchmarkTable2(b *testing.B) {
	for _, name := range benchGraphNames {
		g := benchGraph(b, name)
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				f := Filter(g)
				if f.N() != g.NumNodes() {
					b.Fatal("bad filter")
				}
			}
		})
	}
}

// BenchmarkTable3 times every framework × algorithm × graph cell of the
// headline comparison (per-Run, preprocessing excluded).
func BenchmarkTable3(b *testing.B) {
	for _, alg := range []string{"IN", "PR", "CF", "BFS"} {
		for _, fw := range []string{"mixen", "blockgas", "push", "polymer", "pull"} {
			for _, name := range benchGraphNames {
				g := benchGraph(b, name)
				b.Run(fmt.Sprintf("%s/%s/%s", alg, fw, name), func(b *testing.B) {
					e := benchEngine(b, fw, g, benchWidth(alg))
					b.ReportAllocs()
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						if alg == "BFS" {
							if _, err := algo.RunBFS(e, g, benchBFSSource(g)); err != nil {
								b.Fatal(err)
							}
							continue
						}
						if _, err := e.Run(benchProgram(b, alg, g)); err != nil {
							b.Fatal(err)
						}
					}
				})
			}
		}
	}
}

// BenchmarkTable4 times each framework's preprocessing (structure
// construction), reproducing Table 4.
func BenchmarkTable4(b *testing.B) {
	for _, name := range benchGraphNames {
		g := benchGraph(b, name)
		b.Run("mixen/"+name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.New(g, core.Config{}); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run("gpop/"+name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := baseline.NewBlockGAS(g, baseline.BlockGASConfig{}); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run("ligra/"+name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				baseline.NewPush(g, 0)
			}
		})
		b.Run("polymer/"+name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				baseline.NewPolymer(g, 0, 0)
			}
		})
		b.Run("graphmat/"+name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				baseline.NewPull(g, 0)
			}
		})
	}
}

// BenchmarkFig4 times the Mixen / Block / Pull InDegree variants whose
// execution-time bars (plus modelled traffic dots) make up Figure 4.
func BenchmarkFig4(b *testing.B) {
	for _, name := range benchGraphNames {
		g := benchGraph(b, name)
		for _, fw := range []string{"mixen", "blockgas", "pull"} {
			b.Run(fw+"/"+name, func(b *testing.B) {
				e := benchEngine(b, fw, g, 1)
				prog := algo.NewInDegree(benchIters)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := e.Run(prog); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkFig5 runs the cache-simulator traces behind Figure 5's L2
// reference breakdown (wiki-like graph, scaled hierarchy).
func BenchmarkFig5(b *testing.B) {
	g := benchGraph(b, "wiki")
	n := g.NumNodes()
	ones := make([]float64, n)
	for i := range ones {
		ones[i] = 1
	}
	b.Run("pull", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			h, err := memmodel.ScaledHierarchy(64)
			if err != nil {
				b.Fatal(err)
			}
			memmodel.TracePull(g, ones, h)
		}
	})
	b.Run("block", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			h, err := memmodel.ScaledHierarchy(64)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := memmodel.TraceBlockGAS(g, ones, 1024, h); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("mixen", func(b *testing.B) {
		e, err := core.New(g, core.Config{Side: 1024})
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			h, err := memmodel.ScaledHierarchy(64)
			if err != nil {
				b.Fatal(err)
			}
			memmodel.TraceMixen(e, ones, h)
		}
	})
}

// BenchmarkFig6 sweeps the Mixen block size on InDegree (Figure 6's x-axis)
// for a skewed and a non-skewed graph.
func BenchmarkFig6(b *testing.B) {
	for _, name := range []string{"wiki", "pld", "road"} {
		g := benchGraph(b, name)
		for _, side := range []int{1024, 2048, 4096, 8192, 16384, 32768} {
			b.Run(fmt.Sprintf("%s/side%d", name, side), func(b *testing.B) {
				e, err := core.New(g, core.Config{Side: side})
				if err != nil {
					b.Fatal(err)
				}
				prog := algo.NewInDegree(benchIters)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := e.Run(prog); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkFig7 sweeps the block size on the pld-like graph through the
// cache simulator (Figure 7's LLC/traffic series).
func BenchmarkFig7(b *testing.B) {
	g := benchGraph(b, "pld")
	n := g.NumNodes()
	ones := make([]float64, n)
	for i := range ones {
		ones[i] = 1
	}
	for _, side := range []int{256, 1024, 4096} {
		b.Run(fmt.Sprintf("side%d", side), func(b *testing.B) {
			e, err := core.New(g, core.Config{Side: side})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				h, err := memmodel.ScaledHierarchy(64)
				if err != nil {
					b.Fatal(err)
				}
				memmodel.TraceMixen(e, ones, h)
			}
		})
	}
}

// benchAblation times Mixen InDegree with one design choice toggled.
func benchAblation(b *testing.B, name string, on, off core.Config) {
	g := benchGraph(b, "wiki")
	for label, cfg := range map[string]core.Config{"on": on, "off": off} {
		cfg := cfg
		b.Run(name+"/"+label, func(b *testing.B) {
			e, err := core.New(g, cfg)
			if err != nil {
				b.Fatal(err)
			}
			prog := algo.NewInDegree(benchIters)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := e.Run(prog); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationCacheStep compares static-bin reuse against re-pushing
// seed contributions every iteration.
func BenchmarkAblationCacheStep(b *testing.B) {
	benchAblation(b, "cache", core.Config{}, core.Config{DisableCache: true})
}

// BenchmarkAblationHubOrder compares hub relocation against plain stable
// classification ordering.
func BenchmarkAblationHubOrder(b *testing.B) {
	benchAblation(b, "huborder", core.Config{}, core.Config{DisableHubOrder: true})
}

// BenchmarkAblationOrdering compares the paper's two-group hub-first
// policy against the costlier full degree sort from the reordering
// literature.
func BenchmarkAblationOrdering(b *testing.B) {
	benchAblation(b, "ordering", core.Config{}, core.Config{DegreeSortOrder: true})
}

// BenchmarkAblationEdgeCompression compares compressed bins (one entry per
// source per block) against per-edge bins.
func BenchmarkAblationEdgeCompression(b *testing.B) {
	benchAblation(b, "compress", core.Config{}, core.Config{DisableCompression: true})
}

// BenchmarkAblationLoadBalance compares overloaded-block splitting against
// unsplit blocks.
func BenchmarkAblationLoadBalance(b *testing.B) {
	benchAblation(b, "loadbalance", core.Config{}, core.Config{MaxLoadFactor: -1})
}

// BenchmarkAblationActiveTracking compares the per-segment activity mask
// against full re-scatter on a sparse iteration (BFS over the road grid,
// where the frontier touches few segments per round).
func BenchmarkAblationActiveTracking(b *testing.B) {
	g := benchGraph(b, "road")
	for label, cfg := range map[string]core.Config{
		"on":  {},
		"off": {DisableActiveTracking: true},
	} {
		cfg := cfg
		b.Run("activemask/"+label, func(b *testing.B) {
			e, err := core.New(g, cfg)
			if err != nil {
				b.Fatal(err)
			}
			prog := algo.NewBFS(g, benchBFSSource(g))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := e.Run(prog); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPreprocessFilterOnly isolates the filtering pass (the dominant
// term in Mixen's Table 4 overhead).
func BenchmarkPreprocessFilterOnly(b *testing.B) {
	g := benchGraph(b, "pld")
	for i := 0; i < b.N; i++ {
		f := Filter(g)
		if f.N() == 0 {
			b.Fatal("bad filter")
		}
	}
}

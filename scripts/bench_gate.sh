#!/usr/bin/env bash
# bench_gate.sh — main-phase benchmark regression gate.
#
# Compares the median ns/op of the width-1 and width-8 main-phase
# benchmarks between two `go test -bench` output files and FAILS (exit 1)
# when either regresses by more than the threshold. CI runs both files on
# the same runner (base commit, then head), so the comparison is
# machine-independent; the committed BENCH_PR*.bench.txt snapshots remain
# the human-readable history.
#
# Usage: scripts/bench_gate.sh BASE.txt HEAD.txt [threshold-pct]
#   threshold-pct defaults to 10.
#
# Override: maintainers apply the `bench-regression-ok` label to a PR to
# skip the gate for intentional tradeoffs (see CONTRIBUTING.md).
set -euo pipefail

if [ $# -lt 2 ]; then
  echo "usage: $0 BASE.txt HEAD.txt [threshold-pct]" >&2
  exit 2
fi
base="$1"
head="$2"
threshold="${3:-10}"

# A benchmark file that does not exist (a skipped or crashed bench run)
# must be its own clear failure, not an awk "cannot open" mid-comparison.
for f in "$base" "$head"; do
  if [ ! -r "$f" ]; then
    echo "bench_gate: FAIL benchmark output $f is missing or unreadable" >&2
    exit 2
  fi
done

# median_ns BENCH_REGEX FILE — median ns/op across -count repetitions.
median_ns() {
  awk -v re="$1" '
    $0 ~ re {
      for (i = 2; i <= NF; i++) if ($i == "ns/op") { v[n++] = $(i-1); break }
    }
    END {
      if (n == 0) { print "NA"; exit }
      # insertion sort (n is tiny)
      for (i = 1; i < n; i++) { x = v[i]; j = i - 1
        while (j >= 0 && v[j] > x) { v[j+1] = v[j]; j-- } v[j+1] = x }
      if (n % 2) print v[int(n/2)]
      else print (v[n/2-1] + v[n/2]) / 2
    }' "$2"
}

fail=0
missing=0
for bench in 'BenchmarkMainPhaseWidth1(-[0-9]+)?[[:space:]]' 'BenchmarkMainPhaseWidth8(-[0-9]+)?[[:space:]]'; do
  name=$(echo "$bench" | sed 's/(.*//')
  b=$(median_ns "$bench" "$base")
  h=$(median_ns "$bench" "$head")
  if [ "$b" = "NA" ] || [ "$h" = "NA" ]; then
    echo "bench_gate: FAIL $name missing from base or head output (base=$b head=$h)" >&2
    fail=1
    missing=1
    continue
  fi
  delta=$(awk -v b="$b" -v h="$h" 'BEGIN { printf "%.1f", (h - b) * 100 / b }')
  over=$(awk -v b="$b" -v h="$h" -v t="$threshold" 'BEGIN { print (h > b * (1 + t/100)) ? 1 : 0 }')
  if [ "$over" = "1" ]; then
    echo "bench_gate: FAIL $name regressed ${delta}% (base median ${b} ns/op -> head ${h} ns/op, threshold ${threshold}%)" >&2
    fail=1
  else
    echo "bench_gate: ok   $name ${delta}% (base median ${b} ns/op -> head ${h} ns/op)" >&2
  fi
done

if [ "$missing" != 0 ]; then
  echo "bench_gate: a gated benchmark did not run — fix the bench invocation;" >&2
  echo "bench_gate: the 'bench-regression-ok' label does not cover missing data." >&2
elif [ "$fail" != 0 ]; then
  echo "bench_gate: main-phase regression detected. If intentional, apply the" >&2
  echo "bench_gate: 'bench-regression-ok' label to the PR (see CONTRIBUTING.md)." >&2
fi
exit "$fail"

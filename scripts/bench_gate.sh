#!/usr/bin/env bash
# bench_gate.sh — benchmark regression gate.
#
# Compares the median of each gated benchmark metric between two
# `go test -bench` output files and FAILS (exit 1) when any regresses by
# more than its threshold. CI runs both files on the same runner (base
# commit, then head), so the comparison is machine-independent; the
# committed BENCH_PR*.bench.txt snapshots remain the human-readable
# history.
#
# Gated set:
#   BenchmarkMainPhaseWidth1/8   ns/op    default threshold (10%)
#   BenchmarkServeCachedQuery    p99-ns   15% (serving tail latency)
#
# Usage: scripts/bench_gate.sh BASE.txt HEAD.txt [threshold-pct]
#   threshold-pct defaults to 10 and applies to the ns/op benchmarks;
#   the serve p99 gate always uses 15.
#
# Missing data is diagnosed, not lumped in with regressions:
#   - missing from HEAD: the benchmark stopped running — always a
#     failure; fix the bench invocation.
#   - missing from BASE: the baseline predates this benchmark (it was
#     added in the PR under test). This fails by default so a typo'd new
#     benchmark name cannot silently skip the gate, but CI sets
#     BENCH_GATE_ALLOW_NEW=1 when comparing against the PR base commit,
#     where "new in head" is expected and is skipped with a note.
#
# The gate refuses to judge on thin data: each side must carry at least
# BENCH_GATE_MIN_SAMPLES (default 7) repetitions of every gated benchmark,
# so a single noisy run can never trip — or pass — the gate on its own.
# When the gate does trip, it prints each side's sample spread (min..max)
# and the full list of benchmark names it compared, so a noisy-runner
# false positive — or a benchmark that silently fell out of the gated set —
# is recognizable at a glance.
#
# Override: maintainers apply the `bench-regression-ok` label to a PR to
# skip the gate for intentional tradeoffs (see CONTRIBUTING.md).
set -euo pipefail

if [ $# -lt 2 ]; then
  echo "usage: $0 BASE.txt HEAD.txt [threshold-pct]" >&2
  exit 2
fi
base="$1"
head="$2"
threshold="${3:-10}"
min_samples="${BENCH_GATE_MIN_SAMPLES:-7}"
allow_new="${BENCH_GATE_ALLOW_NEW:-0}"

# A benchmark file that does not exist (a skipped or crashed bench run)
# must be its own clear failure, not an awk "cannot open" mid-comparison.
for f in "$base" "$head"; do
  if [ ! -r "$f" ]; then
    echo "bench_gate: FAIL benchmark output $f is missing or unreadable" >&2
    exit 2
  fi
done

# stats BENCH_REGEX UNIT FILE — "median count min max" of the metric
# whose unit label follows its value (ns/op, p99-ns, ...), across -count
# repetitions; "NA 0 NA NA" when the benchmark never ran.
stats() {
  awk -v re="$1" -v unit="$2" '
    $0 ~ re {
      for (i = 2; i <= NF; i++) if ($i == unit) { v[n++] = $(i-1); break }
    }
    END {
      if (n == 0) { print "NA 0 NA NA"; exit }
      # insertion sort (n is tiny)
      for (i = 1; i < n; i++) { x = v[i]; j = i - 1
        while (j >= 0 && v[j] > x) { v[j+1] = v[j]; j-- } v[j+1] = x }
      if (n % 2) m = v[int(n/2)]
      else m = (v[n/2-1] + v[n/2]) / 2
      print m, n, v[0], v[n-1]
    }' "$3"
}

fail=0
missing=0
compared=""

# gate_one NAME REGEX UNIT THRESHOLD-PCT
gate_one() {
  local name="$1" bench="$2" unit="$3" thr="$4"
  compared="${compared:+$compared, }$name($unit)"
  local b bn bmin bmax h hn hmin hmax
  read -r b bn bmin bmax <<EOF
$(stats "$bench" "$unit" "$base")
EOF
  read -r h hn hmin hmax <<EOF
$(stats "$bench" "$unit" "$head")
EOF
  if [ "$h" = "NA" ]; then
    echo "bench_gate: FAIL $name ran in the baseline but not in head — the benchmark stopped running; fix the bench invocation" >&2
    fail=1
    missing=1
    return
  fi
  if [ "$b" = "NA" ]; then
    if [ "$allow_new" = "1" ]; then
      echo "bench_gate: skip $name is new in head (baseline predates it); no regression to judge" >&2
    else
      echo "bench_gate: FAIL $name missing from baseline $base — the baseline predates this benchmark." >&2
      echo "bench_gate:      If the benchmark is genuinely new in this PR, rerun with BENCH_GATE_ALLOW_NEW=1" >&2
      echo "bench_gate:      (or regenerate the baseline); this is NOT a performance regression." >&2
      fail=1
      missing=1
    fi
    return
  fi
  if [ "$bn" -lt "$min_samples" ] || [ "$hn" -lt "$min_samples" ]; then
    echo "bench_gate: FAIL $name has too few samples to judge (base=$bn head=$hn, need >= $min_samples); rerun with -count=$min_samples or higher" >&2
    fail=1
    missing=1
    return
  fi
  local delta over
  delta=$(awk -v b="$b" -v h="$h" 'BEGIN { printf "%.1f", (h - b) * 100 / b }')
  over=$(awk -v b="$b" -v h="$h" -v t="$thr" 'BEGIN { print (h > b * (1 + t/100)) ? 1 : 0 }')
  if [ "$over" = "1" ]; then
    echo "bench_gate: FAIL $name regressed ${delta}% (base median ${b} ${unit} -> head ${h} ${unit}, threshold ${thr}%)" >&2
    echo "bench_gate:      base spread ${bmin}..${bmax} ${unit} over ${bn} samples; head spread ${hmin}..${hmax} ${unit} over ${hn} samples" >&2
    fail=1
  else
    echo "bench_gate: ok   $name ${delta}% (base median ${b} ${unit} -> head ${h} ${unit}, n=${hn})" >&2
  fi
}

gate_one BenchmarkMainPhaseWidth1 'BenchmarkMainPhaseWidth1(-[0-9]+)?[[:space:]]' ns/op "$threshold"
gate_one BenchmarkMainPhaseWidth8 'BenchmarkMainPhaseWidth8(-[0-9]+)?[[:space:]]' ns/op "$threshold"
# Serving tail latency: the cached-query p99 (custom p99-ns metric from
# BenchmarkServeCachedQuery). Tail percentiles are noisier than medians
# of means, hence the wider 15% threshold.
gate_one BenchmarkServeCachedQuery 'BenchmarkServeCachedQuery(-[0-9]+)?[[:space:]]' p99-ns 15

if [ "$missing" != 0 ]; then
  echo "bench_gate: benchmarks compared: ${compared}" >&2
  echo "bench_gate: a gated benchmark is missing on one side — see the per-benchmark" >&2
  echo "bench_gate: diagnosis above; the 'bench-regression-ok' label does not cover missing data." >&2
elif [ "$fail" != 0 ]; then
  echo "bench_gate: benchmarks compared: ${compared}" >&2
  echo "bench_gate: regression detected. If intentional, apply the" >&2
  echo "bench_gate: 'bench-regression-ok' label to the PR (see CONTRIBUTING.md)." >&2
fi
exit "$fail"

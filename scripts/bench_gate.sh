#!/usr/bin/env bash
# bench_gate.sh — main-phase benchmark regression gate.
#
# Compares the median ns/op of the width-1 and width-8 main-phase
# benchmarks between two `go test -bench` output files and FAILS (exit 1)
# when either regresses by more than the threshold. CI runs both files on
# the same runner (base commit, then head), so the comparison is
# machine-independent; the committed BENCH_PR*.bench.txt snapshots remain
# the human-readable history.
#
# Usage: scripts/bench_gate.sh BASE.txt HEAD.txt [threshold-pct]
#   threshold-pct defaults to 10.
#
# The gate refuses to judge on thin data: each side must carry at least
# BENCH_GATE_MIN_SAMPLES (default 7) repetitions of every gated benchmark,
# so a single noisy run can never trip — or pass — the gate on its own.
# When the gate does trip, it prints each side's sample spread (min..max)
# and the full list of benchmark names it compared, so a noisy-runner
# false positive — or a benchmark that silently fell out of the gated set —
# is recognizable at a glance.
#
# Override: maintainers apply the `bench-regression-ok` label to a PR to
# skip the gate for intentional tradeoffs (see CONTRIBUTING.md).
set -euo pipefail

if [ $# -lt 2 ]; then
  echo "usage: $0 BASE.txt HEAD.txt [threshold-pct]" >&2
  exit 2
fi
base="$1"
head="$2"
threshold="${3:-10}"
min_samples="${BENCH_GATE_MIN_SAMPLES:-7}"

# A benchmark file that does not exist (a skipped or crashed bench run)
# must be its own clear failure, not an awk "cannot open" mid-comparison.
for f in "$base" "$head"; do
  if [ ! -r "$f" ]; then
    echo "bench_gate: FAIL benchmark output $f is missing or unreadable" >&2
    exit 2
  fi
done

# stats_ns BENCH_REGEX FILE — "median count min max" of ns/op across
# -count repetitions, or "NA 0 NA NA" when the benchmark never ran.
stats_ns() {
  awk -v re="$1" '
    $0 ~ re {
      for (i = 2; i <= NF; i++) if ($i == "ns/op") { v[n++] = $(i-1); break }
    }
    END {
      if (n == 0) { print "NA 0 NA NA"; exit }
      # insertion sort (n is tiny)
      for (i = 1; i < n; i++) { x = v[i]; j = i - 1
        while (j >= 0 && v[j] > x) { v[j+1] = v[j]; j-- } v[j+1] = x }
      if (n % 2) m = v[int(n/2)]
      else m = (v[n/2-1] + v[n/2]) / 2
      print m, n, v[0], v[n-1]
    }' "$2"
}

fail=0
missing=0
compared=""
for bench in 'BenchmarkMainPhaseWidth1(-[0-9]+)?[[:space:]]' 'BenchmarkMainPhaseWidth8(-[0-9]+)?[[:space:]]'; do
  name=$(echo "$bench" | sed 's/(.*//')
  compared="${compared:+$compared, }$name"
  read -r b bn bmin bmax <<EOF
$(stats_ns "$bench" "$base")
EOF
  read -r h hn hmin hmax <<EOF
$(stats_ns "$bench" "$head")
EOF
  if [ "$b" = "NA" ] || [ "$h" = "NA" ]; then
    echo "bench_gate: FAIL $name missing from base or head output (base=$b head=$h)" >&2
    fail=1
    missing=1
    continue
  fi
  if [ "$bn" -lt "$min_samples" ] || [ "$hn" -lt "$min_samples" ]; then
    echo "bench_gate: FAIL $name has too few samples to judge (base=$bn head=$hn, need >= $min_samples); rerun with -count=$min_samples or higher" >&2
    fail=1
    missing=1
    continue
  fi
  delta=$(awk -v b="$b" -v h="$h" 'BEGIN { printf "%.1f", (h - b) * 100 / b }')
  over=$(awk -v b="$b" -v h="$h" -v t="$threshold" 'BEGIN { print (h > b * (1 + t/100)) ? 1 : 0 }')
  if [ "$over" = "1" ]; then
    echo "bench_gate: FAIL $name regressed ${delta}% (base median ${b} ns/op -> head ${h} ns/op, threshold ${threshold}%)" >&2
    echo "bench_gate:      base spread ${bmin}..${bmax} ns/op over ${bn} samples; head spread ${hmin}..${hmax} ns/op over ${hn} samples" >&2
    fail=1
  else
    echo "bench_gate: ok   $name ${delta}% (base median ${b} ns/op -> head ${h} ns/op, n=${hn})" >&2
  fi
done

if [ "$missing" != 0 ]; then
  echo "bench_gate: benchmarks compared: ${compared}" >&2
  echo "bench_gate: a gated benchmark did not run — fix the bench invocation;" >&2
  echo "bench_gate: the 'bench-regression-ok' label does not cover missing data." >&2
elif [ "$fail" != 0 ]; then
  echo "bench_gate: benchmarks compared: ${compared}" >&2
  echo "bench_gate: main-phase regression detected. If intentional, apply the" >&2
  echo "bench_gate: 'bench-regression-ok' label to the PR (see CONTRIBUTING.md)." >&2
fi
exit "$fail"

#!/usr/bin/env bash
# bench.sh — PR-level benchmark snapshot.
#
# Runs the width-sweep microbenchmarks (including the width-1 zero-alloc
# entry), the engine-level BenchmarkPageRank, the serving hot-path,
# load-shed and cached-query microbenchmarks (cmd/mixenserve), the
# sparse-frontier study, the shard-scaling experiment (S=1/2/4 on the
# skewed presets), the skew-aware reordering + block auto-tuning study
# (mixenbench -experiment reorder), the mmap cold-start study (mixenbench
# -experiment coldstart), and the serving-cache zipf replay study
# (mixenbench -experiment serve — cache-on/off p50/p99/QPS/hit-rate with
# a bit-identity hard gate), then bundles everything into BENCH_PR10.json.
# When a committed BENCH_PR9.bench.txt exists and benchstat is installed,
# it also emits a benchstat comparison against that baseline.
# Artifacts:
#   BENCH_PR10.bench.txt raw `go test -bench` lines; feed two of these to
#                        benchstat to compare commits
#   BENCH_PR10.json      parsed numbers + the raw lines, for dashboards
#
# Usage: scripts/bench.sh [outdir]   (default: repo root)
#
# BENCH_SMOKE=1 shrinks everything (count=3, shrink=32, fewer graphs) for
# a CI smoke pass that still exercises every study and gate end to end.
set -euo pipefail

cd "$(dirname "$0")/.."
outdir="${1:-.}"
mkdir -p "$outdir"

if [ "${BENCH_SMOKE:-0}" = "1" ]; then
  count="${BENCH_COUNT:-3}"
  shrink="${BENCH_SHRINK:-32}"
  graphs="${BENCH_GRAPHS:-wiki}"
  shard_graphs="${BENCH_SHARD_GRAPHS:-wiki}"
  reorder_graphs="${BENCH_REORDER_GRAPHS:-wiki}"
  coldstart_graphs="${BENCH_COLDSTART_GRAPHS:-wiki}"
else
  count="${BENCH_COUNT:-7}"
  shrink="${BENCH_SHRINK:-8}"
  graphs="${BENCH_GRAPHS:-weibo,wiki,rmat}"
  shard_graphs="${BENCH_SHARD_GRAPHS:-weibo,wiki}"
  reorder_graphs="${BENCH_REORDER_GRAPHS:-weibo,wiki,road}"
  coldstart_graphs="${BENCH_COLDSTART_GRAPHS:-wiki,weibo,rmat}"
fi
benchtxt="$outdir/BENCH_PR10.bench.txt"
json="$outdir/BENCH_PR10.json"

echo ">> microbenchmarks: main-phase width sweep (count=$count)" >&2
go test -run=NONE -bench 'BenchmarkMainPhaseWidth' -benchmem -count="$count" \
    ./internal/core/ | tee "$benchtxt" >&2

echo ">> microbenchmarks: engine-level PageRank (count=$count)" >&2
go test -run=NONE -bench 'BenchmarkPageRank' -benchmem -count="$count" \
    . | tee -a "$benchtxt" >&2

echo ">> microbenchmarks: serving hot path + load shed + cached query (count=$count)" >&2
go test -run=NONE -bench 'BenchmarkServe' -benchmem -count="$count" \
    ./cmd/mixenserve/ | tee -a "$benchtxt" >&2

echo ">> sparse-frontier study (mixenbench -experiment frontier)" >&2
fronttxt="$(mktemp)"
shardtxt="$(mktemp)"
reordertxt="$(mktemp)"
coldtxt="$(mktemp)"
servetxt="$(mktemp)"
benchstattxt="$(mktemp)"
trap 'rm -f "$fronttxt" "$shardtxt" "$reordertxt" "$coldtxt" "$servetxt" "$benchstattxt"' EXIT
go run ./cmd/mixenbench -experiment frontier -graphs "$graphs" \
    -shrink "$shrink" | tee "$fronttxt" >&2

echo ">> shard-scaling study (mixenbench -experiment shard, S=1/2/4)" >&2
go run ./cmd/mixenbench -experiment shard -graphs "$shard_graphs" \
    -shrink "$shrink" | tee "$shardtxt" >&2

echo ">> reordering + auto-tuning study (mixenbench -experiment reorder)" >&2
go run ./cmd/mixenbench -experiment reorder -graphs "$reorder_graphs" \
    -shrink "$shrink" | tee "$reordertxt" >&2

echo ">> mmap cold-start study (mixenbench -experiment coldstart)" >&2
go run ./cmd/mixenbench -experiment coldstart -graphs "$coldstart_graphs" \
    -shrink "$shrink" | tee "$coldtxt" >&2

echo ">> serving-cache zipf replay study (mixenbench -experiment serve)" >&2
go run ./cmd/mixenbench -experiment serve -shrink "$shrink" | tee "$servetxt" >&2

# benchstat vs the committed PR9 baseline (shared width-sweep, PageRank and
# serving lines; BenchmarkServeCachedQuery is new in PR10 and simply has no
# baseline column). Informational — missing benchstat or a missing baseline
# must not fail the snapshot.
benchstat_ok=false
if [ -f BENCH_PR9.bench.txt ] && command -v benchstat >/dev/null 2>&1; then
  if benchstat BENCH_PR9.bench.txt "$benchtxt" > "$benchstattxt" 2>&1; then
    benchstat_ok=true
    echo ">> benchstat vs BENCH_PR9.bench.txt" >&2
    cat "$benchstattxt" >&2
  fi
else
  echo ">> benchstat or BENCH_PR9.bench.txt unavailable; skipping comparison" >&2
fi

{
  echo '{'
  echo '  "bench": "PR10 serving-layer result cache + approx fast path",'
  echo "  \"go\": \"$(go env GOVERSION)\","
  echo "  \"commit\": \"$(git rev-parse --short HEAD 2>/dev/null || echo unknown)\","

  # Parsed go-bench lines: name, ns/op, B/op, allocs/op, plus custom
  # metrics (p99-ns from BenchmarkServeCachedQuery).
  echo '  "microbench": ['
  awk '/^Benchmark/ {
    line = $0
    printf "%s    {\"name\": \"%s\", \"iters\": %s, \"ns_per_op\": %s", sep, $1, $2, $3
    for (i = 4; i < NF; i++) {
      if ($(i+1) == "B/op")      printf ", \"bytes_per_op\": %s", $i
      if ($(i+1) == "allocs/op") printf ", \"allocs_per_op\": %s", $i
      if ($(i+1) == "p99-ns")    printf ", \"p99_ns\": %s", $i
    }
    printf "}"
    sep = ",\n"
  } END { print "" }' "$benchtxt"
  echo '  ],'

  # Parsed frontier-study rows:
  # Graph iter dense_ms sparse_ms speedup entries entries(sp) last-iter 1st-sp sp-rows identical.
  echo '  "frontier_study": ['
  awk '$2 ~ /^[0-9]+$/ && $1 != "Graph" && NF >= 11 {
    sp = $5; sub(/x$/, "", sp)
    lf = $8; sub(/%$/, "", lf)
    printf "%s    {\"graph\": \"%s\", \"iterations\": %s, \"dense_ms\": %s, \"sparse_ms\": %s, \"speedup\": %s, \"dense_entries\": %s, \"sparse_entries\": %s, \"last_iter_entry_pct\": %s, \"first_sparse_iter\": %s, \"sparse_row_iters\": %s, \"identical\": %s}", \
      sep, $1, $2, $3, $4, sp, $6, $7, lf, $9, $10, $11
    sep = ",\n"
  } END { print "" }' "$fronttxt"
  echo '  ],'

  # Parsed shard-study rows:
  # Graph shards cut% prep_sec main_s/iter speedup identical.
  echo '  "shard_study": ['
  awk '$2 ~ /^[0-9]+$/ && $1 != "Graph" && NF >= 7 {
    cf = $3; sub(/%$/, "", cf)
    printf "%s    {\"graph\": \"%s\", \"shards\": %s, \"cut_pct\": %s, \"prep_sec\": %s, \"main_sec_per_iter\": %s, \"speedup\": %s, \"identical\": %s}", \
      sep, $1, $2, cf, $4, $5, $6, $7
    sep = ",\n"
  } END { print "" }' "$shardtxt"
  echo '  ],'

  # Parsed reorder-study rows:
  # Graph strategy main_s/it prep_s reorder_s bandwidth avg_span llc% MB ident.
  echo '  "reorder_study": ['
  awk '$2 ~ /^(original|degree|random|hubsort|hubcluster|dbg)$/ && NF == 10 {
    printf "%s    {\"graph\": \"%s\", \"strategy\": \"%s\", \"main_sec_per_iter\": %s, \"prep_sec\": %s, \"reorder_sec\": %s, \"bandwidth\": %s, \"avg_span\": %s, \"llc_miss_pct\": %s, \"traffic_mb\": %s, \"identical\": %s}", \
      sep, $1, $2, $3, $4, $5, $6, $7, $8, $9, $10
    sep = ",\n"
  } END { print "" }' "$reordertxt"
  echo '  ],'

  # Parsed autotune-study rows:
  # Graph source side main_s/it tune_s [*best].
  echo '  "autotune_study": ['
  awk '$2 ~ /^(sweep|measured|predicted|default)$/ && $3 ~ /^[0-9]+$/ && NF >= 5 {
    best = (NF >= 6 && $6 == "*") ? "true" : "false"
    printf "%s    {\"graph\": \"%s\", \"source\": \"%s\", \"side\": %s, \"main_sec_per_iter\": %s, \"tune_sec\": %s, \"best\": %s}", \
      sep, $1, $2, $3, $4, $5, best
    sep = ",\n"
  } END { print "" }' "$reordertxt"
  echo '  ],'

  # Parsed coldstart-study rows:
  # Graph nodes edges build_ms mmap_ms speedup file_MB build_heap mmap_heap identical.
  echo '  "coldstart_study": ['
  awk '$2 ~ /^[0-9]+$/ && $1 != "Graph" && NF == 10 {
    sp = $6; sub(/x$/, "", sp)
    bh = $8; sub(/M$/, "", bh)
    mh = $9; sub(/M$/, "", mh)
    printf "%s    {\"graph\": \"%s\", \"nodes\": %s, \"edges\": %s, \"build_ms\": %s, \"mmap_ms\": %s, \"speedup\": %s, \"file_mb\": %s, \"build_heap_mb\": %s, \"mmap_heap_mb\": %s, \"identical\": %s}", \
      sep, $1, $2, $3, $4, $5, sp, $7, bh, mh, $10
    sep = ",\n"
  } END { print "" }' "$coldtxt"
  echo '  ],'

  # Parsed serve-study rows:
  # Skew cache queries hotset warm-hit% hit% p50_ms p99_ms qps identical.
  echo '  "serve_study": ['
  awk '$2 ~ /^(on|off)$/ && NF == 10 {
    printf "%s    {\"skew\": %s, \"cache\": \"%s\", \"queries\": %s, \"hot_set\": %s, \"warm_hit_pct\": %s, \"hit_pct\": %s, \"p50_ms\": %s, \"p99_ms\": %s, \"qps\": %s, \"identical\": %s}", \
      sep, $1, $2, $3, $4, $5, $6, $7, $8, $9, $10
    sep = ",\n"
  } END { print "" }' "$servetxt"
  echo '  ],'

  # The serve study's approx fast-path check line, verbatim.
  echo '  "serve_approx": ['
  awk '/^approx:/ {
    gsub(/\\/, "\\\\"); gsub(/"/, "\\\""); gsub(/\t/, " ")
    printf "%s    \"%s\"", sep, $0
    sep = ",\n"
  } END { print "" }' "$servetxt"
  echo '  ],'

  # benchstat output vs the committed PR9 baseline, when available.
  if $benchstat_ok; then
    echo '  "benchstat_vs_pr9": ['
    awk 'NF {
      gsub(/\\/, "\\\\"); gsub(/"/, "\\\""); gsub(/\t/, " ")
      printf "%s    \"%s\"", sep, $0
      sep = ",\n"
    } END { print "" }' "$benchstattxt"
    echo '  ],'
  fi

  # Raw bench lines, verbatim, for benchstat-style tooling downstream.
  echo '  "raw_bench": ['
  awk '/^Benchmark/ {
    gsub(/\\/, "\\\\"); gsub(/"/, "\\\""); gsub(/\t/, " ")
    printf "%s    \"%s\"", sep, $0
    sep = ",\n"
  } END { print "" }' "$benchtxt"
  echo '  ]'
  echo '}'
} > "$json"

echo ">> wrote $benchtxt and $json" >&2

#!/usr/bin/env bash
# bench.sh — PR-level benchmark snapshot.
#
# Runs the width-sweep microbenchmarks (benchstat-comparable raw output)
# and the batched-serving study, then bundles both into BENCH_PR3.json.
# Artifacts:
#   BENCH_PR3.bench.txt  raw `go test -bench` lines; feed two of these to
#                        benchstat to compare commits
#   BENCH_PR3.json       parsed numbers + the raw lines, for dashboards
#
# Usage: scripts/bench.sh [outdir]   (default: repo root)
set -euo pipefail

cd "$(dirname "$0")/.."
outdir="${1:-.}"
mkdir -p "$outdir"

count="${BENCH_COUNT:-5}"
benchtxt="$outdir/BENCH_PR3.bench.txt"
json="$outdir/BENCH_PR3.json"

echo ">> microbenchmarks: main-phase width sweep (count=$count)" >&2
go test -run=NONE -bench 'BenchmarkMainPhaseWidth' -benchmem -count="$count" \
    ./internal/core/ | tee "$benchtxt" >&2

echo ">> batched-serving study (mixenbench -experiment batch)" >&2
batchtxt="$(mktemp)"
trap 'rm -f "$batchtxt"' EXIT
go run ./cmd/mixenbench -experiment batch -graphs "${BENCH_GRAPHS:-weibo,wiki}" \
    -shrink "${BENCH_SHRINK:-8}" | tee "$batchtxt" >&2

{
  echo '{'
  echo '  "bench": "PR3 batched multi-query execution",'
  echo "  \"go\": \"$(go env GOVERSION)\","
  echo "  \"commit\": \"$(git rev-parse --short HEAD 2>/dev/null || echo unknown)\","

  # Parsed go-bench lines: name, ns/op, B/op, allocs/op.
  echo '  "microbench": ['
  awk '/^Benchmark/ {
    line = $0
    printf "%s    {\"name\": \"%s\", \"iters\": %s, \"ns_per_op\": %s", sep, $1, $2, $3
    for (i = 4; i < NF; i++) {
      if ($(i+1) == "B/op")      printf ", \"bytes_per_op\": %s", $i
      if ($(i+1) == "allocs/op") printf ", \"allocs_per_op\": %s", $i
    }
    printf "}"
    sep = ",\n"
  } END { print "" }' "$benchtxt"
  echo '  ],'

  # Parsed batch-study rows: Graph K par_qps batch_qps speedup model sim identical.
  echo '  "batch_study": ['
  awk '$2 ~ /^[0-9]+$/ && $1 != "Graph" && NF >= 8 {
    sp = $5; sub(/x$/, "", sp)
    printf "%s    {\"graph\": \"%s\", \"k\": %s, \"parallel_qps\": %s, \"batch_qps\": %s, \"speedup\": %s, \"model_bytes_per_query\": %s, \"sim_bytes_per_query\": %s, \"identical\": %s}", sep, $1, $2, $3, $4, sp, $6, $7, $8
    sep = ",\n"
  } END { print "" }' "$batchtxt"
  echo '  ],'

  # Raw bench lines, verbatim, for benchstat-style tooling downstream.
  echo '  "raw_bench": ['
  awk '/^Benchmark/ {
    gsub(/\\/, "\\\\"); gsub(/"/, "\\\""); gsub(/\t/, " ")
    printf "%s    \"%s\"", sep, $0
    sep = ",\n"
  } END { print "" }' "$benchtxt"
  echo '  ]'
  echo '}'
} > "$json"

echo ">> wrote $benchtxt and $json" >&2

module mixen

go 1.22

package mixen

// Observability overhead benches: BenchmarkPageRank times the reference
// PageRank run on the wiki stand-in across three collector settings, so the
// no-op collector's cost is directly comparable against an uninstrumented
// engine (the contract is < 2% overhead):
//
//	go test -bench=BenchmarkPageRank -benchmem

import (
	"context"
	"testing"
	"time"

	"mixen/internal/algo"
	"mixen/internal/core"
	"mixen/internal/obs"
)

func benchPageRank(b *testing.B, col obs.Collector) {
	g := benchGraph(b, "wiki")
	e, err := core.New(g, core.Config{Collector: col})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Run(algo.NewPageRank(g, 0.85, 0, benchIters)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPageRank(b *testing.B) {
	b.Run("collector=none", func(b *testing.B) { benchPageRank(b, nil) })
	b.Run("collector=noop", func(b *testing.B) { benchPageRank(b, obs.Nop{}) })
	b.Run("collector=registry", func(b *testing.B) { benchPageRank(b, obs.NewRegistry()) })
}

// BenchmarkPageRankTracing measures the request-tracing overhead around the
// same reference run: "off" runs under a plain context (the steady-state
// serving path when the request is not sampled — must stay at the
// BenchmarkPageRank baseline), "on" attaches a recording trace so every
// iteration books a span.
func BenchmarkPageRankTracing(b *testing.B) {
	run := func(b *testing.B, traced bool) {
		g := benchGraph(b, "wiki")
		e, err := core.New(g, core.Config{})
		if err != nil {
			b.Fatal(err)
		}
		tracer := obs.NewTracer(16, 1)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ctx := context.Background()
			var tr *obs.Trace
			if traced {
				tr = tracer.Start(tracer.NextID(), "pagerank")
				ctx = obs.WithTrace(ctx, tr)
			}
			if _, err := e.RunCtx(ctx, algo.NewPageRank(g, 0.85, 0, benchIters)); err != nil {
				b.Fatal(err)
			}
			tracer.Finish(tr, "ok")
		}
	}
	b.Run("traced=off", func(b *testing.B) { run(b, false) })
	b.Run("traced=on", func(b *testing.B) { run(b, true) })
}

// BenchmarkTracePrimitives isolates the per-record-site cost of the
// tracing-off path: nil-trace method calls, the untraced context lookup and
// an unsampled Tracer.Start. Each op covers all of them; the bar is zero
// allocations.
func BenchmarkTracePrimitives(b *testing.B) {
	tracer := obs.NewTracer(16, 0) // sampling off
	ctx := context.Background()
	now := time.Now()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr := tracer.Start(tracer.NextID(), "q") // nil: not sampled
		tr.AddSpan(obs.SpanAdmission, now)
		tr.AddSpanIter(obs.SpanIteration, 1, now, now)
		tr.SetBatchSize(4)
		if obs.ContextTraces(ctx) != nil {
			b.Fatal("background context carries traces")
		}
		tracer.Finish(tr, "ok")
	}
}

// TestTracingOffPathAllocatesNothing pins the contract the benchmarks
// measure: with tracing off (nil trace / unsampled tracer / untraced
// context) no record site allocates, and the Nop collector still hands out
// nil instruments.
func TestTracingOffPathAllocatesNothing(t *testing.T) {
	tracer := obs.NewTracer(16, 0)
	ctx := context.Background()
	now := time.Now()
	allocs := testing.AllocsPerRun(1000, func() {
		tr := tracer.Start(tracer.NextID(), "q")
		tr.AddSpan(obs.SpanAdmission, now)
		tr.AddSpanIter(obs.SpanIteration, 1, now, now)
		tr.SetBatchSize(4)
		_ = obs.ContextTraces(ctx)
		_ = obs.WithTrace(ctx, nil)
		tracer.Finish(tr, "ok")
	})
	if allocs != 0 {
		t.Errorf("tracing-off path allocates %.1f objects/op, want 0", allocs)
	}

	var c obs.Collector = obs.Nop{}
	if c.Counter("x") != nil || c.Gauge("x") != nil || c.Histogram("x") != nil || c.Enabled() {
		t.Error("Nop collector no longer hands out nil instruments")
	}
}

package mixen

// Observability overhead benches: BenchmarkPageRank times the reference
// PageRank run on the wiki stand-in across three collector settings, so the
// no-op collector's cost is directly comparable against an uninstrumented
// engine (the contract is < 2% overhead):
//
//	go test -bench=BenchmarkPageRank -benchmem

import (
	"testing"

	"mixen/internal/algo"
	"mixen/internal/core"
	"mixen/internal/obs"
)

func benchPageRank(b *testing.B, col obs.Collector) {
	g := benchGraph(b, "wiki")
	e, err := core.New(g, core.Config{Collector: col})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Run(algo.NewPageRank(g, 0.85, 0, benchIters)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPageRank(b *testing.B) {
	b.Run("collector=none", func(b *testing.B) { benchPageRank(b, nil) })
	b.Run("collector=noop", func(b *testing.B) { benchPageRank(b, obs.Nop{}) })
	b.Run("collector=registry", func(b *testing.B) { benchPageRank(b, obs.NewRegistry()) })
}
